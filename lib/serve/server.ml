module J = Nncs_obs.Json
module Clock = Nncs_obs.Clock
module Metrics = Nncs_obs.Metrics
module Cancel = Nncs_resilience.Cancel
module Firewall = Nncs_resilience.Firewall
module Fault = Nncs_resilience.Fault
module Fail = Nncs_resilience.Failure
module Budget = Nncs_resilience.Budget
module Cache = Nncs_nnabs.Cache
module T = Nncs_nnabs.Transformer
module Verify = Nncs.Verify
module Reach = Nncs.Reach

let m_jobs = Metrics.counter "serve.jobs"
let m_errors = Metrics.counter "serve.errors"
let m_coalesced = Metrics.counter "serve.coalesced_jobs"
let m_cancelled = Metrics.counter "serve.cancelled_jobs"
let m_shed = Metrics.counter "serve.shed_jobs"
let m_lookups = Metrics.counter "serve.lookups"

type config = {
  dispatchers : int;
  cache : Cache.config option;
  memo_path : string option;
  memo_capacity : int option;
  max_queue : int option;
  max_line_bytes : int;
  job_deadline_s : float option;
  backreach : Nncs_backreach.Backreach.t option;
}

let default_config =
  {
    dispatchers = 1;
    cache =
      Some { Cache.default_config with Cache.capacity = 65536; quantum = 0.0 };
    memo_path = None;
    memo_capacity = None;
    max_queue = None;
    max_line_bytes = 1 lsl 20;
    job_deadline_s = None;
    backreach = None;
  }

(* ----- single-flight coalescing -----

   Every job that misses the memo runs as a party of a flight: the
   party that created the flight is its leader and runs the analysis;
   concurrent identical jobs (same job fingerprint, memo reads enabled)
   join as followers and receive the leader's verdict with
   [source = Coalesced].  Each party carries its own cancel state: the
   flight's run token trips only when every party has cancelled (or the
   server-side job deadline fires), so cancelling one follower never
   kills the shared run. *)

type party = {
  p_id : string;
  p_emit : Protocol.event -> unit;
  p_t0 : float;  (* monotonic submit stamp, for per-party elapsed_s *)
  mutable p_leader : bool;
  mutable p_cancelled : bool;  (* under [flock]; ack already emitted *)
}

type flight = {
  f_key : int;  (* unique id in [live], for the watchdog *)
  f_fp : string;
  f_t0 : float;
  f_cancel : Cancel.t;
  mutable f_parties : party list;  (* under [flock] *)
  mutable f_done : bool;  (* under [flock]; set before notification *)
}

type ticket = flight * party

type t = {
  config : config;
  make_system : domain:T.domain -> nn_splits:int -> Nncs.System.t;
  make_cells :
    arcs:int -> headings:int -> arc_indices:int list -> Nncs.Symstate.t list;
  memo : Memo.t;
  flock : Mutex.t;
  inflight : (string, flight) Hashtbl.t;  (* coalescing index, by fp *)
  live : (int, flight) Hashtbl.t;  (* every running flight, by key *)
  mutable next_key : int;
  stopping : bool Atomic.t;
  mutable watchdog : unit Domain.t option;
}

let with_flock t f =
  Mutex.lock t.flock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.flock) f

(* The straggler watchdog: with [job_deadline_s] set, a domain sweeps
   the live flights and trips the run token of any flight older than
   the deadline.  Tripping is all it does — the terminal [cancelled]
   events are emitted by the leader's completion path, which observes
   the token within one budget gate. *)
let watchdog_loop t deadline =
  let interval = Float.min 0.05 (deadline /. 4.0) in
  while not (Atomic.get t.stopping) do
    Unix.sleepf interval;
    let now = Clock.monotonic_s () in
    let victims =
      with_flock t (fun () ->
          Hashtbl.fold
            (fun _ f acc ->
              if (not f.f_done) && now -. f.f_t0 >= deadline then f :: acc
              else acc)
            t.live [])
    in
    List.iter
      (fun f -> Cancel.cancel f.f_cancel ~reason:"job deadline exceeded")
      victims
  done

let create config ~make_system ~make_cells =
  if config.dispatchers < 1 then
    invalid_arg "Server.create: dispatchers must be >= 1";
  if config.max_line_bytes < 1 then
    invalid_arg "Server.create: max_line_bytes must be >= 1";
  (match config.max_queue with
  | Some k when k < 1 -> invalid_arg "Server.create: max_queue must be >= 1"
  | _ -> ());
  (match config.job_deadline_s with
  | Some d when d <= 0.0 ->
      invalid_arg "Server.create: job_deadline_s must be positive"
  | _ -> ());
  (* install the process-wide cache up front so the very first job (and
     any code path probing [Cache.shared] for stats) sees the same
     table *)
  (match config.cache with
  | Some c -> ignore (Cache.shared c)
  | None -> ());
  let t =
    {
      config;
      make_system;
      make_cells;
      memo =
        Memo.create ?path:config.memo_path ?capacity:config.memo_capacity ();
      flock = Mutex.create ();
      inflight = Hashtbl.create 16;
      live = Hashtbl.create 16;
      next_key = 0;
      stopping = Atomic.make false;
      watchdog = None;
    }
  in
  (match config.job_deadline_s with
  | Some d -> t.watchdog <- Some (Domain.spawn (fun () -> watchdog_loop t d))
  | None -> ());
  t

let resolve_cells t = function
  | Protocol.Explicit cells -> cells
  | Protocol.Partition { arcs; headings; arc_indices } ->
      t.make_cells ~arcs ~headings ~arc_indices

(* [Verify.fingerprint] deliberately omits [config.limits]: a per-cell
   journal written under a tight budget is still resumable under a
   generous one.  Whole-report memoization is different — a
   budget-truncated, unknown-heavy report is not a valid answer for a
   job with a different (or no) budget — so the serve-layer key extends
   the digest with the limits.  Unlimited jobs (the common case) keep
   the bare digest, and with it any previously persisted memo
   journal. *)
let job_fingerprint ~config sys cells =
  let fp = Verify.fingerprint ~config sys cells in
  let l = config.Verify.limits in
  if Budget.is_unlimited l then fp
  else
    let flt = function None -> "-" | Some x -> Printf.sprintf "%.17g" x in
    let int = function None -> "-" | Some n -> string_of_int n in
    Printf.sprintf "%s+b:%s:%s:%s" fp
      (flt l.Budget.deadline_s)
      (int l.Budget.max_ode_steps)
      (int l.Budget.max_symstates)

let cancel_ticket t ((flight, party) : ticket) ~reason =
  let tripped =
    with_flock t (fun () ->
        if flight.f_done || party.p_cancelled then false
        else begin
          party.p_cancelled <- true;
          if List.for_all (fun p -> p.p_cancelled) flight.f_parties then
            Cancel.cancel flight.f_cancel ~reason;
          true
        end)
  in
  if tripped then Metrics.incr m_cancelled;
  tripped

(* Flight completion, always reached when the leader's firewalled run
   returns: unregister the flight, then deliver each party its terminal
   event — the leader's verdict carries [source = Run], followers get
   [Coalesced], and parties that already acknowledged their own
   cancellation get nothing.  Emission happens outside [flock]: party
   emitters take session locks, and [flock] must stay innermost. *)
let finish_flight t flight outcome =
  let parties =
    with_flock t (fun () ->
        flight.f_done <- true;
        (match Hashtbl.find_opt t.inflight flight.f_fp with
        | Some f when f == flight -> Hashtbl.remove t.inflight flight.f_fp
        | _ -> ());
        Hashtbl.remove t.live flight.f_key;
        flight.f_parties)
  in
  List.iter
    (fun p ->
      if not p.p_cancelled then
        match outcome with
        | `Report (report : Verify.report) ->
            p.p_emit
              (Protocol.Verdict
                 {
                   id = p.p_id;
                   fingerprint = flight.f_fp;
                   source = (if p.p_leader then Protocol.Run else Protocol.Coalesced);
                   coverage = report.Verify.coverage;
                   proved_cells = report.Verify.proved_cells;
                   unknown_cells = report.Verify.unknown_cells;
                   total_cells = report.Verify.total_cells;
                   elapsed_s = Clock.elapsed_s ~since:p.p_t0;
                 })
        | `Cancelled reason ->
            Metrics.incr m_cancelled;
            p.p_emit (Protocol.Cancelled { id = p.p_id; reason })
        | `Failed failure ->
            p.p_emit
              (Protocol.Job_error
                 { id = p.p_id; reason = Fail.to_string failure }))
    parties

(* One job, firewalled.  The fingerprint is computed before consulting
   the memo, so a hit answers without running any reachability; on a
   miss the job becomes a flight party (leader or follower, see above).
   A run's report is always stored unless its token tripped — a
   cancellation-truncated report must never poison the memo — and even
   for [memo=false] jobs, which opt out of reading the memo (and of
   coalescing), not of feeding it. *)
let submit t ~emit ?on_start (job : Protocol.job) =
  Metrics.incr m_jobs;
  let t0 = Clock.monotonic_s () in
  let prologue =
    Firewall.protect ~classify:Reach.classify (fun () ->
        Fault.trigger ~key:job.id "serve.job";
        let sys = t.make_system ~domain:job.domain ~nn_splits:job.nn_splits in
        let cells = resolve_cells t job.cells in
        (match cells with
        | [] -> invalid_arg "job resolves to an empty partition"
        | _ :: _ -> ());
        let config =
          {
            job.config with
            Verify.reach =
              { job.config.Verify.reach with Reach.abs_cache = t.config.cache };
          }
        in
        let fp = job_fingerprint ~config sys cells in
        (sys, cells, config, fp))
  in
  match prologue with
  | Error failure ->
      Metrics.incr m_errors;
      emit (Protocol.Job_error { id = job.id; reason = Fail.to_string failure })
  | Ok (sys, cells, config, fp) -> (
      emit (Protocol.Accepted { id = job.id; fingerprint = fp });
      let memoized = if job.use_memo then Memo.find t.memo fp else None in
      match memoized with
      | Some report ->
          emit
            (Protocol.Verdict
               {
                 id = job.id;
                 fingerprint = fp;
                 source = Protocol.Memo;
                 coverage = report.Verify.coverage;
                 proved_cells = report.Verify.proved_cells;
                 unknown_cells = report.Verify.unknown_cells;
                 total_cells = report.Verify.total_cells;
                 elapsed_s = Clock.elapsed_s ~since:t0;
               })
      | None -> (
          let party =
            {
              p_id = job.id;
              p_emit = emit;
              p_t0 = t0;
              p_leader = false;
              p_cancelled = false;
            }
          in
          let role =
            with_flock t (fun () ->
                let incumbent =
                  if job.use_memo then Hashtbl.find_opt t.inflight fp else None
                in
                match incumbent with
                | Some flight when not flight.f_done ->
                    flight.f_parties <- party :: flight.f_parties;
                    Metrics.incr m_coalesced;
                    `Follow flight
                | _ ->
                    party.p_leader <- true;
                    let key = t.next_key in
                    t.next_key <- t.next_key + 1;
                    let flight =
                      {
                        f_key = key;
                        f_fp = fp;
                        f_t0 = t0;
                        f_cancel = Cancel.create ();
                        f_parties = [ party ];
                        f_done = false;
                      }
                    in
                    if job.use_memo then Hashtbl.replace t.inflight fp flight;
                    Hashtbl.replace t.live key flight;
                    `Lead flight)
          in
          (* outside [flock]: the callback takes session locks *)
          (match (on_start, role) with
          | Some f, (`Lead flight | `Follow flight) -> f (flight, party)
          | None, _ -> ());
          match role with
          | `Follow _ ->
              (* the dispatcher is free; the shared run's completion
                 will deliver this party's verdict *)
              ()
          | `Lead flight ->
              let result =
                Firewall.protect ~classify:Reach.classify (fun () ->
                    Verify.verify_partition ~cancel:flight.f_cancel ~config
                      ~progress:(fun cells_done total ->
                        emit
                          (Protocol.Progress
                             { id = job.id; cells_done; total }))
                      sys cells)
              in
              let outcome =
                match Cancel.reason flight.f_cancel with
                | Some reason ->
                    (* the report (if any) is cancellation-truncated:
                       unknown-heavy, not what an uncancelled run would
                       answer — never memoized *)
                    `Cancelled reason
                | None -> (
                    match result with
                    | Ok report ->
                        Memo.store t.memo fp report;
                        `Report report
                    | Error failure ->
                        Metrics.incr m_errors;
                        `Failed failure)
              in
              finish_flight t flight outcome))

let lookup t fp = Memo.peek t.memo fp

(* A table probe: pure in-memory hash lookups, no reachability, no
   queueing — answered on whatever domain asks.  The table itself is
   immutable after load, so no lock is involved. *)
let answer_lookup t ~id ~box ~cmd =
  Metrics.incr m_lookups;
  let status =
    match t.config.backreach with
    | None -> Protocol.Lookup_unavailable
    | Some table -> (
        match Nncs_backreach.Backreach.query table ~box ~cmd with
        | Nncs_backreach.Backreach.Unsafe { k } -> Protocol.Lookup_unsafe { k }
        | Nncs_backreach.Backreach.Safe -> Protocol.Lookup_safe
        | Nncs_backreach.Backreach.Out_of_domain -> Protocol.Lookup_out_of_domain)
  in
  Protocol.Lookup_result { id; status }

let stats_json t =
  let num_int n = J.Num (float_of_int n) in
  let cache_fields =
    match t.config.cache with
    | None -> []
    | Some c ->
        let cache = Cache.shared c in
        let s = Cache.stats cache in
        [
          ("cache_hits", num_int s.Cache.hits);
          ("cache_misses", num_int s.Cache.misses);
          ("cache_evictions", num_int s.Cache.evictions);
          ("cache_size", num_int s.Cache.size);
          ( "cache_shard_sizes",
            J.List
              (Array.to_list (Array.map num_int (Cache.shard_sizes cache))) );
        ]
  in
  let live_flights = with_flock t (fun () -> Hashtbl.length t.live) in
  J.Obj
    ([
       ("jobs", num_int (Metrics.value m_jobs));
       ("errors", num_int (Metrics.value m_errors));
       ("coalesced_jobs", num_int (Metrics.value m_coalesced));
       ("cancelled_jobs", num_int (Metrics.value m_cancelled));
       ("shed_jobs", num_int (Metrics.value m_shed));
       ("live_flights", num_int live_flights);
       ("lookups", num_int (Metrics.value m_lookups));
       ("backreach_table", J.Bool (Option.is_some t.config.backreach));
       ("memo_entries", num_int (Memo.size t.memo));
       ( "memo_hits",
         num_int (Metrics.value (Metrics.counter "serve.memo_hits")) );
       ("memo_evictions", num_int (Memo.eviction_count t.memo));
       ("dispatchers", num_int t.config.dispatchers);
       ("host_cores", num_int (Domain.recommended_domain_count ()));
     ]
    @ cache_fields)

(* ----- the session loop ----- *)

(* A bounded line reader: [input_line] would buffer an arbitrarily long
   line in memory, so one hostile (or corrupt) client line could
   exhaust the process.  Reading char-by-char against the cap costs a
   branch per byte on OCaml's buffered channels — noise next to JSON
   parsing — and overflow discards the rest of the line so the session
   survives, answering [`Too_long] instead of dying. *)
let read_line_bounded ic max_bytes =
  let buf = Buffer.create 256 in
  let rec go () =
    match input_char ic with
    | exception End_of_file ->
        if Buffer.length buf = 0 then raise End_of_file
        else `Line (Buffer.contents buf)
    | '\n' -> `Line (Buffer.contents buf)
    | c ->
        if Buffer.length buf >= max_bytes then begin
          (try
             while input_char ic <> '\n' do
               ()
             done
           with End_of_file -> ());
          `Too_long
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
  in
  go ()

(* Session-side job states, keyed by job id under the session lock. *)
type jstate =
  | JQueued of bool ref  (* the queue item's dropped flag *)
  | JActive of ticket
  | JDone

type queue_item = { qi_job : Protocol.job; qi_dropped : bool ref }

let event_id = function
  | Protocol.Accepted { id; _ }
  | Protocol.Progress { id; _ }
  | Protocol.Verdict { id; _ }
  | Protocol.Cancelled { id; _ }
  | Protocol.Job_error { id; _ } ->
      Some id
  (* a lookup answer is not a job event: it must bypass the per-id
     single-terminal registry entirely, or a lookup reusing a finished
     job's id would be suppressed *)
  | Protocol.Lookup_result _ | Protocol.Stats_report _ | Protocol.Bye -> None

let is_terminal = function
  | Protocol.Verdict _ | Protocol.Cancelled _ | Protocol.Job_error _ -> true
  | _ -> false

let run t ic oc =
  let out_lock = Mutex.create () in
  (* set once the client stops reading (EPIPE/ECONNRESET surface as
     [Sys_error] when SIGPIPE is ignored).  Emits become no-ops instead
     of raising: a write failure escaping a dispatcher domain would be
     re-raised by [Domain.join] and take the whole server down, when the
     only thing lost is one session's event stream.  Jobs keep running —
     their verdicts still feed the memo for future sessions. *)
  let client_gone = ref false in
  let write_event ev =
    Mutex.lock out_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock out_lock)
      (fun () ->
        if not !client_gone then
          try
            output_string oc (J.to_string (Protocol.event_to_json ev));
            output_char oc '\n';
            flush oc
          with Sys_error _ -> client_gone := true)
  in
  let queue : queue_item Queue.t = Queue.create () in
  let qlock = Mutex.create () in
  let qcond = Condition.create () in
  let accepting = ref true in
  let registry : (string, jstate) Hashtbl.t = Hashtbl.create 32 in
  (* [queue]/[accepting]/[registry] are shared with the dispatcher
     domains but local to this call; every access goes through [qlock]
     below. *)
  let with_qlock f =
    Mutex.lock qlock;
    Fun.protect ~finally:(fun () -> Mutex.unlock qlock) f
  in
  (* The registry makes each job's event stream single-terminal: the
     first terminal event (verdict / cancelled / error) moves the id to
     [JDone] and is written; anything arriving for a [JDone] id — a
     memo verdict racing a cancel, progress of a just-cancelled run —
     is suppressed.  Events without a registered id (parse errors with
     [id = ""], cancel nacks) pass through. *)
  let emit ev =
    let write =
      match event_id ev with
      | Some id when id <> "" ->
          with_qlock (fun () ->
              match Hashtbl.find_opt registry id with
              | Some JDone -> false
              | Some _ | None ->
                  if is_terminal ev && Hashtbl.mem registry id then
                    Hashtbl.replace registry id JDone;
                  true)
      | _ -> true
    in
    if write then write_event ev
  in
  let enqueue (job : Protocol.job) =
    let action =
      with_qlock (fun () ->
          if job.Protocol.id = "" then `Reject "job id must be non-empty"
          else
            match Hashtbl.find_opt registry job.Protocol.id with
            | Some (JQueued _ | JActive _) ->
                (* like cancel nacks, the rejection carries an empty id:
                   emitting a terminal error under the original id would
                   mark it done and suppress the first job's verdict *)
                `Reject
                  (Printf.sprintf "duplicate job id %S still in flight"
                     job.Protocol.id)
            | Some JDone | None -> (
                match t.config.max_queue with
                | Some k when Queue.length queue >= k ->
                    Metrics.incr m_shed;
                    `Shed k
                | _ ->
                    let dropped = ref false in
                    Queue.add { qi_job = job; qi_dropped = dropped } queue;
                    Hashtbl.replace registry job.Protocol.id (JQueued dropped);
                    Condition.signal qcond;
                    `Queued))
    in
    match action with
    | `Queued -> ()
    | `Shed k ->
        emit
          (Protocol.Job_error
             {
               id = job.Protocol.id;
               reason = Printf.sprintf "overloaded: job queue is full (%d)" k;
             })
    | `Reject reason -> emit (Protocol.Job_error { id = ""; reason })
  in
  let handle_cancel id =
    let action =
      with_qlock (fun () ->
          match Hashtbl.find_opt registry id with
          | Some (JQueued dropped) when not !dropped ->
              dropped := true;
              `Queued
          | Some (JActive ticket) -> `Active ticket
          | Some (JQueued _) | Some JDone -> `Finished
          | None -> `Unknown)
    in
    match action with
    | `Queued ->
        Metrics.incr m_cancelled;
        emit (Protocol.Cancelled { id; reason = "cancelled while queued" })
    | `Active ticket ->
        if cancel_ticket t ticket ~reason:"cancelled by client" then
          emit (Protocol.Cancelled { id; reason = "cancelled by client" })
        else
          emit
            (Protocol.Job_error
               {
                 id = "";
                 reason = Printf.sprintf "cancel %S: job already finished" id;
               })
    | `Finished ->
        emit
          (Protocol.Job_error
             {
               id = "";
               reason = Printf.sprintf "cancel %S: job already finished" id;
             })
    | `Unknown ->
        emit
          (Protocol.Job_error
             { id = ""; reason = Printf.sprintf "cancel %S: unknown job id" id })
  in
  let stop_accepting () =
    with_qlock (fun () ->
        accepting := false;
        Condition.broadcast qcond)
  in
  (* [None] only once the queue is drained AND no more jobs can arrive:
     queued work survives a shutdown request (graceful drain). *)
  let dequeue () =
    with_qlock (fun () ->
        let rec wait () =
          if not (Queue.is_empty queue) then Some (Queue.pop queue)
          else if not !accepting then None
          else begin
            Condition.wait qcond qlock;
            wait ()
          end
        in
        wait ())
  in
  let run_item item =
    if !(item.qi_dropped) then ()
      (* cancelled while queued; its [cancelled] ack is already out *)
    else
      submit t ~emit item.qi_job ~on_start:(fun ticket ->
          (* the job is now a flight party; record the ticket so a
             [cancel] request can reach the run.  A cancel that raced
             the dispatch (dropped set between dequeue and here) is
             honoured by tripping the fresh ticket immediately. *)
          let dropped =
            with_qlock (fun () ->
                if !(item.qi_dropped) then true
                else begin
                  (match Hashtbl.find_opt registry item.qi_job.Protocol.id with
                  | Some (JQueued d) when d == item.qi_dropped ->
                      Hashtbl.replace registry item.qi_job.Protocol.id
                        (JActive ticket)
                  | _ -> ());
                  false
                end)
          in
          if dropped then
            ignore (cancel_ticket t ticket ~reason:"cancelled while queued"))
  in
  let rec dispatch () =
    match dequeue () with
    | None -> ()
    | Some item ->
        (try run_item item
         with e ->
           (* only genuinely fatal exceptions reach here — the firewall
              absorbs the rest inside [submit].  Give the job a terminal
              event before the domain dies so its client is not left
              hanging, then re-raise. *)
           (try
              emit
                (Protocol.Job_error
                   {
                     id = item.qi_job.Protocol.id;
                     reason = "dispatcher crashed: " ^ Printexc.to_string e;
                   })
            with _ -> ());
           raise e);
        dispatch ()
  in
  let dispatchers =
    Array.init t.config.dispatchers (fun _ -> Domain.spawn dispatch)
  in
  let outcome = ref `Eof in
  let continue = ref true in
  while !continue do
    match read_line_bounded ic t.config.max_line_bytes with
    | exception End_of_file -> continue := false
    (* a reset connection raises [Sys_error], not [End_of_file]; treat
       it the same so the drain/join/bye path still runs and no
       dispatcher domain is leaked *)
    | exception Sys_error _ -> continue := false
    | `Too_long ->
        emit
          (Protocol.Job_error
             {
               id = "";
               reason =
                 Printf.sprintf "request line exceeds %d bytes"
                   t.config.max_line_bytes;
             })
    | `Line line when String.trim line = "" -> ()
    | `Line line -> (
        match J.of_string line with
        | exception J.Parse_error msg ->
            emit
              (Protocol.Job_error { id = ""; reason = "parse error: " ^ msg })
        | request -> (
            match Protocol.request_of_json request with
            | Error reason ->
                let id =
                  match J.member "id" request with
                  | Some (J.Str id) -> id
                  | _ -> ""
                in
                emit (Protocol.Job_error { id; reason })
            | Ok (Protocol.Job job) -> enqueue job
            | Ok (Protocol.Lookup { id; box; cmd }) ->
                (* inline, ahead of the queue and every serving tier: a
                   table probe must stay cheap even while jobs run *)
                emit (answer_lookup t ~id ~box ~cmd)
            | Ok (Protocol.Cancel id) -> handle_cancel id
            | Ok Protocol.Stats -> emit (Protocol.Stats_report (stats_json t))
            | Ok Protocol.Shutdown ->
                outcome := `Shutdown;
                continue := false))
  done;
  stop_accepting ();
  Array.iter
    (fun d ->
      (* a fatal dispatcher crash is re-raised by [join]; absorbing it
         here keeps the drain going so the session still ends with a
         clean [bye] and no leaked domains *)
      try Domain.join d with _ -> ())
    dispatchers;
  (* recovery drain: if dispatchers died with items still queued, run
     them here so every accepted job reaches a terminal event *)
  (try dispatch () with _ -> ());
  (* followers coalesced onto another session's flight have no local
     dispatcher to wait on: poll the registry until every accepted job
     is terminal.  Sleep-polling mirrors the leaf scheduler's choice —
     immune to lost wakeups from dying emitters. *)
  let pending () =
    with_qlock (fun () ->
        Hashtbl.fold
          (fun _ st acc ->
            acc || match st with JDone -> false | JQueued _ | JActive _ -> true)
          registry false)
  in
  while pending () do
    Unix.sleepf 0.002
  done;
  emit Protocol.Bye;
  !outcome

let close t =
  Atomic.set t.stopping true;
  (match t.watchdog with
  | Some d ->
      Domain.join d;
      t.watchdog <- None
  | None -> ());
  Memo.close t.memo
