module J = Nncs_obs.Json
module Metrics = Nncs_obs.Metrics
module Firewall = Nncs_resilience.Firewall
module Fault = Nncs_resilience.Fault
module Fail = Nncs_resilience.Failure
module Budget = Nncs_resilience.Budget
module Cache = Nncs_nnabs.Cache
module T = Nncs_nnabs.Transformer
module Verify = Nncs.Verify
module Reach = Nncs.Reach

let m_jobs = Metrics.counter "serve.jobs"
let m_errors = Metrics.counter "serve.errors"

type config = {
  dispatchers : int;
  cache : Cache.config option;
  memo_path : string option;
}

let default_config =
  {
    dispatchers = 1;
    cache =
      Some { Cache.default_config with Cache.capacity = 65536; quantum = 0.0 };
    memo_path = None;
  }

type t = {
  config : config;
  make_system : domain:T.domain -> nn_splits:int -> Nncs.System.t;
  make_cells :
    arcs:int -> headings:int -> arc_indices:int list -> Nncs.Symstate.t list;
  memo : Memo.t;
}

let create config ~make_system ~make_cells =
  if config.dispatchers < 1 then
    invalid_arg "Server.create: dispatchers must be >= 1";
  (* install the process-wide cache up front so the very first job (and
     any code path probing [Cache.shared] for stats) sees the same
     table *)
  (match config.cache with
  | Some c -> ignore (Cache.shared c)
  | None -> ());
  {
    config;
    make_system;
    make_cells;
    memo = Memo.create ?path:config.memo_path ();
  }

let resolve_cells t = function
  | Protocol.Explicit cells -> cells
  | Protocol.Partition { arcs; headings; arc_indices } ->
      t.make_cells ~arcs ~headings ~arc_indices

(* [Verify.fingerprint] deliberately omits [config.limits]: a per-cell
   journal written under a tight budget is still resumable under a
   generous one.  Whole-report memoization is different — a
   budget-truncated, unknown-heavy report is not a valid answer for a
   job with a different (or no) budget — so the serve-layer key extends
   the digest with the limits.  Unlimited jobs (the common case) keep
   the bare digest, and with it any previously persisted memo
   journal. *)
let job_fingerprint ~config sys cells =
  let fp = Verify.fingerprint ~config sys cells in
  let l = config.Verify.limits in
  if Budget.is_unlimited l then fp
  else
    let flt = function None -> "-" | Some x -> Printf.sprintf "%.17g" x in
    let int = function None -> "-" | Some n -> string_of_int n in
    Printf.sprintf "%s+b:%s:%s:%s" fp
      (flt l.Budget.deadline_s)
      (int l.Budget.max_ode_steps)
      (int l.Budget.max_symstates)

(* One job, synchronously, firewalled.  The fingerprint is computed
   before consulting the memo, so a hit answers without running any
   reachability; a run's report is always stored (even for [memo=false]
   jobs — they opt out of reading the memo, not of feeding it). *)
let submit t ~emit (job : Protocol.job) =
  Metrics.incr m_jobs;
  let t0 = Unix.gettimeofday () in
  let result =
    Firewall.protect ~classify:Reach.classify (fun () ->
        Fault.trigger ~key:job.id "serve.job";
        let sys = t.make_system ~domain:job.domain ~nn_splits:job.nn_splits in
        let cells = resolve_cells t job.cells in
        (match cells with
        | [] -> invalid_arg "job resolves to an empty partition"
        | _ :: _ -> ());
        let config =
          {
            job.config with
            Verify.reach =
              { job.config.Verify.reach with Reach.abs_cache = t.config.cache };
          }
        in
        let fp = job_fingerprint ~config sys cells in
        emit (Protocol.Accepted { id = job.id; fingerprint = fp });
        let memoized = if job.use_memo then Memo.find t.memo fp else None in
        match memoized with
        | Some report -> (fp, Protocol.Memo, report)
        | None ->
            let report =
              Verify.verify_partition ~config
                ~progress:(fun cells_done total ->
                  emit (Protocol.Progress { id = job.id; cells_done; total }))
                sys cells
            in
            Memo.store t.memo fp report;
            (fp, Protocol.Run, report))
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  match result with
  | Ok (fp, source, report) ->
      emit
        (Protocol.Verdict
           {
             id = job.id;
             fingerprint = fp;
             source;
             coverage = report.Verify.coverage;
             proved_cells = report.Verify.proved_cells;
             unknown_cells = report.Verify.unknown_cells;
             total_cells = report.Verify.total_cells;
             elapsed_s;
           })
  | Error failure ->
      Metrics.incr m_errors;
      emit (Protocol.Job_error { id = job.id; reason = Fail.to_string failure })

let lookup t fp = Memo.peek t.memo fp

let stats_json t =
  let num_int n = J.Num (float_of_int n) in
  let cache_fields =
    match t.config.cache with
    | None -> []
    | Some c ->
        let cache = Cache.shared c in
        let s = Cache.stats cache in
        [
          ("cache_hits", num_int s.Cache.hits);
          ("cache_misses", num_int s.Cache.misses);
          ("cache_evictions", num_int s.Cache.evictions);
          ("cache_size", num_int s.Cache.size);
          ( "cache_shard_sizes",
            J.List
              (Array.to_list (Array.map num_int (Cache.shard_sizes cache))) );
        ]
  in
  J.Obj
    ([
       ("jobs", num_int (Metrics.value m_jobs));
       ("errors", num_int (Metrics.value m_errors));
       ("memo_entries", num_int (Memo.size t.memo));
       ( "memo_hits",
         num_int (Metrics.value (Metrics.counter "serve.memo_hits")) );
       ("dispatchers", num_int t.config.dispatchers);
       ("host_cores", num_int (Domain.recommended_domain_count ()));
     ]
    @ cache_fields)

(* ----- the session loop ----- *)

let run t ic oc =
  let out_lock = Mutex.create () in
  (* set once the client stops reading (EPIPE/ECONNRESET surface as
     [Sys_error] when SIGPIPE is ignored).  Emits become no-ops instead
     of raising: a write failure escaping a dispatcher domain would be
     re-raised by [Domain.join] and take the whole server down, when the
     only thing lost is one session's event stream.  Jobs keep running —
     their verdicts still feed the memo for future sessions. *)
  let client_gone = ref false in
  let emit ev =
    Mutex.lock out_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock out_lock)
      (fun () ->
        if not !client_gone then
          try
            output_string oc (J.to_string (Protocol.event_to_json ev));
            output_char oc '\n';
            flush oc
          with Sys_error _ -> client_gone := true)
  in
  let queue = Queue.create () in
  let qlock = Mutex.create () in
  let qcond = Condition.create () in
  let accepting = ref true in
  (* [queue]/[accepting] are shared with the dispatcher domains but
     local to this call; every access goes through [qlock] below. *)
  let enqueue job =
    Mutex.lock qlock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock qlock)
      (fun () ->
        Queue.add job queue;
        Condition.signal qcond)
  in
  let stop_accepting () =
    Mutex.lock qlock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock qlock)
      (fun () ->
        accepting := false;
        Condition.broadcast qcond)
  in
  (* [None] only once the queue is drained AND no more jobs can arrive:
     queued work survives a shutdown request (graceful drain). *)
  let dequeue () =
    Mutex.lock qlock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock qlock)
      (fun () ->
        let rec wait () =
          if not (Queue.is_empty queue) then Some (Queue.pop queue)
          else if not !accepting then None
          else begin
            Condition.wait qcond qlock;
            wait ()
          end
        in
        wait ())
  in
  let rec dispatch () =
    match dequeue () with
    | None -> ()
    | Some job ->
        submit t ~emit job;
        dispatch ()
  in
  let dispatchers =
    Array.init t.config.dispatchers (fun _ -> Domain.spawn dispatch)
  in
  let outcome = ref `Eof in
  let continue = ref true in
  while !continue do
    match input_line ic with
    | exception End_of_file -> continue := false
    (* a reset connection raises [Sys_error], not [End_of_file]; treat
       it the same so the drain/join/bye path still runs and no
       dispatcher domain is leaked *)
    | exception Sys_error _ -> continue := false
    | line when String.trim line = "" -> ()
    | line -> (
        match J.of_string line with
        | exception J.Parse_error msg ->
            emit
              (Protocol.Job_error { id = ""; reason = "parse error: " ^ msg })
        | request -> (
            match Protocol.request_of_json request with
            | Error reason ->
                let id =
                  match J.member "id" request with
                  | Some (J.Str id) -> id
                  | _ -> ""
                in
                emit (Protocol.Job_error { id; reason })
            | Ok (Protocol.Job job) -> enqueue job
            | Ok Protocol.Stats -> emit (Protocol.Stats_report (stats_json t))
            | Ok Protocol.Shutdown ->
                outcome := `Shutdown;
                continue := false))
  done;
  stop_accepting ();
  Array.iter Domain.join dispatchers;
  emit Protocol.Bye;
  !outcome

let close t = Memo.close t.memo
