(** The fingerprint-keyed verdict memo: tier 1 of the verification
    service.

    Maps job fingerprints to whole verification reports, so a job
    identical to one already answered returns instantly without
    touching the reachability pipeline.  The key is the
    {!Nncs.Verify.fingerprint} digest — covering the partition, the
    command set, the spec probes, the abstraction domain and input
    splits, and the analysis config, but {e not} the worker count,
    scheduler, or abstraction-cache settings, which cannot change
    verdicts — extended by {!Server} with the budget limits when any
    are set, because a budget-truncated report is not a valid answer
    under a different budget.  It covers neither the network weights,
    so one memo must never outlive the network set it was computed
    against.

    Thread-safe: dispatcher domains share one memo behind a mutex.

    Optionally bounded: with a [capacity], entries are kept in an
    intrusive LRU list (the {!Nncs_nnabs.Cache} idiom) and the
    least-recently-{!find}ed entry is evicted to admit a new one, so a
    long-lived server's memo cannot grow without bound.

    Optionally backed by an append-only JSONL journal (one
    [{"t":"verdict_memo","fingerprint":F,"report":R}] line per stored
    verdict): {!create} replays an existing file — tolerating
    crash-truncated lines, which {!Nncs_resilience.Journal.load} skips
    with a warning, and individually corrupt records, which replay
    skips the same way — and appends every new verdict, so a restarted
    server answers past queries from disk.  Evictions leave dead lines
    behind; the journal is compacted — rewritten to exactly the live
    entries, oldest first so replay reconstructs the recency order —
    whenever it exceeds [compact_factor] times the live size (checked
    at replay and after each store) and once more on {!close}. *)

type t

val create :
  ?path:string -> ?capacity:int -> ?compact_factor:int -> unit -> t
(** With [path], replay the journal at [path] (if any) and keep it open
    for appending.  With [capacity] (default unbounded; must be
    positive), bound the live entry count by LRU eviction — a journal
    longer than the capacity replays to the newest [capacity] entries.
    [compact_factor] (default 4, minimum 2) sets the dead-line
    tolerance before the journal is rewritten in place. *)

val find : t -> string -> Nncs.Verify.report option
(** Memo lookup by fingerprint; counts into the [serve.memo_hits] /
    [serve.memo_misses] metrics. *)

val peek : t -> string -> Nncs.Verify.report option
(** {!find} without touching the metrics — for diagnostics and bench
    verdict comparison. *)

val store : t -> string -> Nncs.Verify.report -> unit
(** Insert (and journal) the report under its fingerprint; a fingerprint
    already present keeps its incumbent report — both were computed from
    the same problem, and the incumbent is the one concurrent readers
    may already have returned. *)

val size : t -> int

val eviction_count : t -> int
(** LRU evictions since {!create} (0 for unbounded memos). *)

val close : t -> unit
(** Compact the journal if it holds dead lines, then close it.
    Idempotent. *)
