(** The fingerprint-keyed verdict memo: tier 1 of the verification
    service.

    Maps job fingerprints to whole verification reports, so a job
    identical to one already answered returns instantly without
    touching the reachability pipeline.  The key is the
    {!Nncs.Verify.fingerprint} digest — covering the partition, the
    command set, the spec probes, the abstraction domain and input
    splits, and the analysis config, but {e not} the worker count,
    scheduler, or abstraction-cache settings, which cannot change
    verdicts — extended by {!Server} with the budget limits when any
    are set, because a budget-truncated report is not a valid answer
    under a different budget.  It covers neither the network weights,
    so one memo must never outlive the network set it was computed
    against.

    Thread-safe: dispatcher domains share one memo behind a mutex.

    Optionally backed by an append-only JSONL journal (one
    [{"t":"verdict_memo","fingerprint":F,"report":R}] line per stored
    verdict): {!create} replays an existing file — tolerating
    crash-truncated lines, which {!Nncs_resilience.Journal.load} skips
    with a warning, and individually corrupt records, which replay
    skips the same way — and appends every new verdict, so a restarted
    server answers past queries from disk. *)

type t

val create : ?path:string -> unit -> t
(** With [path], replay the journal at [path] (if any) and keep it open
    for appending. *)

val find : t -> string -> Nncs.Verify.report option
(** Memo lookup by fingerprint; counts into the [serve.memo_hits] /
    [serve.memo_misses] metrics. *)

val peek : t -> string -> Nncs.Verify.report option
(** {!find} without touching the metrics — for diagnostics and bench
    verdict comparison. *)

val store : t -> string -> Nncs.Verify.report -> unit
(** Insert (and journal) the report under its fingerprint; a fingerprint
    already present keeps its incumbent report — both were computed from
    the same problem, and the incumbent is the one concurrent readers
    may already have returned. *)

val size : t -> int
val close : t -> unit
