module J = Nncs_obs.Json
module Journal = Nncs_resilience.Journal
module Metrics = Nncs_obs.Metrics
module Verify = Nncs.Verify

let m_hits = Metrics.counter "serve.memo_hits"
let m_misses = Metrics.counter "serve.memo_misses"

type t = {
  lock : Mutex.t;
  table : (string, Verify.report) Hashtbl.t;
  writer : Journal.writer option;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record_to_json fp report =
  J.Obj
    [
      ("t", J.Str "verdict_memo");
      ("fingerprint", J.Str fp);
      ("report", Verify.report_to_json report);
    ]

(* Replay tolerates individual bad records, not just bad lines: a
   journal written by a newer/older build whose report schema moved
   simply contributes nothing for that entry, and the server recomputes
   on demand. *)
let replay table path =
  List.iter
    (fun j ->
      match (J.member "t" j, J.member "fingerprint" j, J.member "report" j) with
      | Some (J.Str "verdict_memo"), Some (J.Str fp), Some r -> (
          match Verify.report_of_json r with
          | report -> Hashtbl.replace table fp report
          (* not only [Parse_error]: a corrupt record can fail deeper
             down, e.g. [Invalid_argument] from box bounds with
             [lo > hi].  Only genuinely fatal exceptions abort
             startup. *)
          | exception ((Out_of_memory | Stack_overflow | Sys.Break) as e) ->
              raise e
          | exception e ->
              Printf.eprintf
                "warning: memo %s: skipping unreadable report for %s (%s)\n%!"
                path fp (Printexc.to_string e))
      | _ -> ())
    (Journal.load path)

let create ?path () =
  let table = Hashtbl.create 64 in
  let writer =
    match path with
    | None -> None
    | Some p ->
        if Sys.file_exists p then replay table p;
        Some (Journal.create ~append:true p)
  in
  { lock = Mutex.create (); table; writer }

let find t fp =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table fp with
      | Some r ->
          Metrics.incr m_hits;
          Some r
      | None ->
          Metrics.incr m_misses;
          None)

let peek t fp = with_lock t (fun () -> Hashtbl.find_opt t.table fp)

let store t fp report =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.table fp) then begin
        Hashtbl.replace t.table fp report;
        Option.iter (fun w -> Journal.write w (record_to_json fp report)) t.writer
      end)

let size t = with_lock t (fun () -> Hashtbl.length t.table)
let close t = Option.iter Journal.close t.writer
