module J = Nncs_obs.Json
module Journal = Nncs_resilience.Journal
module Metrics = Nncs_obs.Metrics
module Verify = Nncs.Verify

let m_hits = Metrics.counter "serve.memo_hits"
let m_misses = Metrics.counter "serve.memo_misses"
let m_evictions = Metrics.counter "serve.memo_evictions"
let m_compactions = Metrics.counter "serve.memo_compactions"

(* Intrusive doubly-linked LRU list threaded through the entries, the
   same idiom as [Nncs_nnabs.Cache]: the sentinel's [next] is the most
   recently used entry, its [prev] the next eviction victim. *)
type entry = {
  e_fp : string;
  e_report : Verify.report;
  mutable prev : entry;
  mutable next : entry;
}

type t = {
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  sentinel : entry;
  capacity : int option;
  compact_factor : int;
  path : string option;
  mutable writer : Journal.writer option;
  mutable journal_lines : int;
      (* lines in the journal file; grows past [Hashtbl.length table]
         as evictions and duplicates leave dead lines behind *)
  mutable evictions : int;
}

let dummy_report : Verify.report =
  {
    cells = [];
    coverage = 0.0;
    elapsed = 0.0;
    proved_cells = 0;
    unknown_cells = 0;
    total_cells = 0;
  }

let make_sentinel () =
  let rec sentinel =
    { e_fp = ""; e_report = dummy_report; prev = sentinel; next = sentinel }
  in
  sentinel

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let unlink e =
  e.prev.next <- e.next;
  e.next.prev <- e.prev

let push_front t e =
  e.next <- t.sentinel.next;
  e.prev <- t.sentinel;
  t.sentinel.next.prev <- e;
  t.sentinel.next <- e

let record_to_json fp report =
  J.Obj
    [
      ("t", J.Str "verdict_memo");
      ("fingerprint", J.Str fp);
      ("report", Verify.report_to_json report);
    ]

(* Insert under the lock, evicting the LRU victim when at capacity.
   Returns [true] if [fp] was actually inserted (absent before). *)
let insert_locked t fp report =
  match Hashtbl.find_opt t.table fp with
  | Some _ -> false
  | None ->
      (match t.capacity with
      | Some cap when Hashtbl.length t.table >= cap ->
          let victim = t.sentinel.prev in
          if victim != t.sentinel then begin
            unlink victim;
            Hashtbl.remove t.table victim.e_fp;
            t.evictions <- t.evictions + 1;
            Metrics.incr m_evictions
          end
      | _ -> ());
      let e = { e_fp = fp; e_report = report; prev = t.sentinel; next = t.sentinel } in
      Hashtbl.replace t.table fp e;
      push_front t e;
      true

(* Rewrite the journal to exactly the live entries, oldest-to-newest so
   a replay reconstructs the same recency order, then reopen it for
   appending.  Called under the lock. *)
let compact_locked t =
  match (t.path, t.writer) with
  | Some p, Some w ->
      Journal.close w;
      t.writer <- None;
      let tmp = p ^ ".compact.tmp" in
      Journal.with_writer ~append:false tmp (fun w' ->
          let e = ref t.sentinel.prev in
          while !e != t.sentinel do
            Journal.write w' (record_to_json !e.e_fp !e.e_report);
            e := !e.prev
          done);
      Sys.rename tmp p;
      t.writer <- Some (Journal.create ~append:true p);
      t.journal_lines <- Hashtbl.length t.table;
      Metrics.incr m_compactions
  | _ -> ()

(* Dead lines (evicted or superseded entries) are tolerated until they
   dominate the file: compaction runs when the journal exceeds
   [compact_factor] times the live size.  The [> live] guard makes the
   trigger a no-op on a dead-line-free journal regardless of factor. *)
let maybe_compact_locked t =
  let live = Hashtbl.length t.table in
  if
    Option.is_some t.writer
    && t.journal_lines > live
    && t.journal_lines > t.compact_factor * max 1 live
  then compact_locked t

(* Replay tolerates individual bad records, not just bad lines: a
   journal written by a newer/older build whose report schema moved
   simply contributes nothing for that entry, and the server recomputes
   on demand.  Replay routes through the same bounded insert as live
   stores, so a journal longer than the capacity keeps only the newest
   [capacity] entries. *)
let replay t path =
  let records = Journal.load path in
  t.journal_lines <- List.length records;
  List.iter
    (fun j ->
      match (J.member "t" j, J.member "fingerprint" j, J.member "report" j) with
      | Some (J.Str "verdict_memo"), Some (J.Str fp), Some r -> (
          match Verify.report_of_json r with
          | report ->
              (* last record wins: journals are append-ordered, so the
                 later record is the newer one *)
              (match Hashtbl.find_opt t.table fp with
              | Some e ->
                  unlink e;
                  Hashtbl.remove t.table fp
              | None -> ());
              ignore (insert_locked t fp report)
          (* not only [Parse_error]: a corrupt record can fail deeper
             down, e.g. [Invalid_argument] from box bounds with
             [lo > hi].  Only genuinely fatal exceptions abort
             startup. *)
          | exception ((Out_of_memory | Stack_overflow | Sys.Break) as e) ->
              raise e
          | exception e ->
              Printf.eprintf
                "warning: memo %s: skipping unreadable report for %s (%s)\n%!"
                path fp (Printexc.to_string e))
      | _ -> ())
    records

let create ?path ?capacity ?(compact_factor = 4) () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Memo.create: non-positive capacity"
  | _ -> ());
  if compact_factor < 2 then invalid_arg "Memo.create: compact factor < 2";
  let t =
    {
      lock = Mutex.create ();
      table = Hashtbl.create 64;
      sentinel = make_sentinel ();
      capacity;
      compact_factor;
      path;
      writer = None;
      journal_lines = 0;
      evictions = 0;
    }
  in
  (match path with
  | None -> ()
  | Some p ->
      if Sys.file_exists p then replay t p;
      t.writer <- Some (Journal.create ~append:true p);
      (* a bloated journal (heavy eviction or duplicate churn in a past
         life) is rewritten once at startup rather than re-replayed in
         full on every restart *)
      maybe_compact_locked t);
  t

let find t fp =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table fp with
      | Some e ->
          Metrics.incr m_hits;
          unlink e;
          push_front t e;
          Some e.e_report
      | None ->
          Metrics.incr m_misses;
          None)

let peek t fp =
  with_lock t (fun () ->
      Option.map (fun e -> e.e_report) (Hashtbl.find_opt t.table fp))

let store t fp report =
  with_lock t (fun () ->
      if insert_locked t fp report then begin
        (match t.writer with
        | Some w ->
            Journal.write w (record_to_json fp report);
            t.journal_lines <- t.journal_lines + 1
        | None -> ());
        maybe_compact_locked t
      end)

let size t = with_lock t (fun () -> Hashtbl.length t.table)
let eviction_count t = with_lock t (fun () -> t.evictions)

let close t =
  with_lock t (fun () ->
      (* leave a dead-line-free file behind: the next replay then costs
         exactly one parse per live entry *)
      if t.journal_lines > Hashtbl.length t.table then compact_locked t;
      match t.writer with
      | Some w ->
          Journal.close w;
          t.writer <- None
      | None -> ())
