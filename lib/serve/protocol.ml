module J = Nncs_obs.Json
module B = Nncs_interval.Box
module I = Nncs_interval.Interval
module T = Nncs_nnabs.Transformer
module Budget = Nncs_resilience.Budget
module Symstate = Nncs.Symstate
module Verify = Nncs.Verify
module Reach = Nncs.Reach

type cells_spec =
  | Explicit of Symstate.t list
  | Partition of { arcs : int; headings : int; arc_indices : int list }

type job = {
  id : string;
  cells : cells_spec;
  domain : T.domain;
  nn_splits : int;
  config : Verify.config;
  use_memo : bool;
}

type request =
  | Job of job
  | Lookup of { id : string; box : B.t; cmd : int }
  | Cancel of string
  | Stats
  | Shutdown

type source = Memo | Run | Coalesced

type lookup_status =
  | Lookup_unsafe of { k : int }
  | Lookup_safe
  | Lookup_out_of_domain
  | Lookup_unavailable

type event =
  | Accepted of { id : string; fingerprint : string }
  | Progress of { id : string; cells_done : int; total : int }
  | Verdict of {
      id : string;
      fingerprint : string;
      source : source;
      coverage : float;
      proved_cells : int;
      unknown_cells : int;
      total_cells : int;
      elapsed_s : float;
    }
  | Lookup_result of { id : string; status : lookup_status }
  | Cancelled of { id : string; reason : string }
  | Job_error of { id : string; reason : string }
  | Stats_report of J.t
  | Bye

let default_config =
  {
    Verify.default_config with
    Verify.reach = { Reach.default_config with Reach.keep_sets = false };
    max_depth = 0;
  }

let source_to_string = function
  | Memo -> "memo"
  | Run -> "run"
  | Coalesced -> "coalesced"

let lookup_status_to_string = function
  | Lookup_unsafe _ -> "unsafe"
  | Lookup_safe -> "safe"
  | Lookup_out_of_domain -> "out_of_domain"
  | Lookup_unavailable -> "unavailable"

(* ----- field accessors: every failure is a [Parse_error] so the
   request parser's single [try] turns it into an [Error reason] ----- *)

let fail fmt = Printf.ksprintf (fun s -> raise (J.Parse_error s)) fmt

let str_field name j =
  match J.member name j with
  | Some (J.Str s) -> s
  | Some _ -> fail "field %S must be a string" name
  | None -> fail "missing field %S" name

let int_field ~default name j =
  match J.member name j with Some v -> J.to_int v | None -> default

let bool_field ~default name j =
  match J.member name j with
  | Some (J.Bool b) -> b
  | Some _ -> fail "field %S must be a boolean" name
  | None -> default

let req_field name j =
  match J.member name j with Some v -> v | None -> fail "missing field %S" name

let int_opt name j = Option.map J.to_int (J.member name j)
let float_opt name j = Option.map J.to_float (J.member name j)

let int_list_opt name j =
  match J.member name j with
  | Some (J.List l) -> Some (List.map J.to_int l)
  | Some _ -> fail "field %S must be a list of integers" name
  | None -> None

let num_int n = J.Num (float_of_int n)
let int_list_json l = J.List (List.map num_int l)

(* ----- boxes and cells ----- *)

let box_to_json b =
  J.List
    (List.init (B.dim b) (fun d ->
         let iv = B.get b d in
         J.List [ J.Num (I.lo iv); J.Num (I.hi iv) ]))

let box_of_json = function
  | J.List [] -> fail "box must have at least one dimension"
  | J.List dims ->
      B.of_bounds
        (Array.of_list
           (List.map
              (function
                | J.List [ lo; hi ] -> (J.to_float lo, J.to_float hi)
                | _ -> fail "box dimension must be a [lo, hi] pair")
              dims))
  | _ -> fail "box must be a list of [lo, hi] pairs"

let symstate_to_json (st : Symstate.t) =
  J.Obj [ ("box", box_to_json st.Symstate.box); ("cmd", num_int st.Symstate.cmd) ]

let symstate_of_json j =
  match J.member "box" j with
  | Some b -> Symstate.make (box_of_json b) (int_field ~default:0 "cmd" j)
  | None -> fail "cell needs a \"box\" field"

let cells_of_json j =
  match (J.member "cells" j, J.member "partition" j) with
  | Some _, Some _ -> fail "job carries both \"cells\" and \"partition\""
  | Some (J.List l), None -> Explicit (List.map symstate_of_json l)
  | Some _, None -> fail "field \"cells\" must be a list"
  | None, Some p ->
      Partition
        {
          arcs = J.to_int (req_field "arcs" p);
          headings = J.to_int (req_field "headings" p);
          arc_indices = Option.value ~default:[] (int_list_opt "arc_indices" p);
        }
  | None, None -> fail "job needs \"cells\" or \"partition\""

(* ----- the analysis configuration ----- *)

let domain_of_json j =
  match J.member "domain" j with
  | Some (J.Str ("interval" | "symbolic" | "affine" as s)) ->
      T.domain_of_string s
  | Some _ -> fail "field \"domain\" must be interval | symbolic | affine"
  | None -> T.Symbolic

let config_of_json j =
  let base = default_config in
  let r = base.Verify.reach in
  let reach =
    {
      r with
      Reach.integration_steps =
        int_field ~default:r.Reach.integration_steps "m" j;
      taylor_order = int_field ~default:r.Reach.taylor_order "order" j;
      gamma = int_field ~default:r.Reach.gamma "gamma" j;
      scheme =
        (match J.member "scheme" j with
        | Some (J.Str "direct") -> Nncs_ode.Simulate.Direct
        | Some (J.Str "lohner") -> Nncs_ode.Simulate.Lohner
        | Some _ -> fail "field \"scheme\" must be direct | lohner"
        | None -> r.Reach.scheme);
      early_abort = bool_field ~default:r.Reach.early_abort "early_abort" j;
    }
  in
  let strategy =
    match (int_list_opt "split_dims" j, int_opt "split_take" j) with
    | None, None -> base.Verify.strategy
    | Some dims, None -> Verify.All_dims dims
    | Some dims, Some take -> Verify.Most_influential { candidates = dims; take }
    | None, Some _ -> fail "\"split_take\" requires \"split_dims\""
  in
  let limits =
    {
      Budget.deadline_s = float_opt "deadline_s" j;
      max_ode_steps = int_opt "max_ode_steps" j;
      max_symstates = int_opt "max_symstates" j;
    }
  in
  {
    Verify.reach;
    strategy;
    max_depth = int_field ~default:base.Verify.max_depth "max_depth" j;
    workers = int_field ~default:base.Verify.workers "workers" j;
    limits;
    degrade = bool_field ~default:base.Verify.degrade "degrade" j;
    scheduler =
      (match J.member "scheduler" j with
      | Some (J.Str "cells") -> Verify.Cells
      | Some (J.Str "leaves") -> Verify.Leaves
      | Some _ -> fail "field \"scheduler\" must be cells | leaves"
      | None -> base.Verify.scheduler);
    batch_leaves = int_field ~default:base.Verify.batch_leaves "batch_leaves" j;
  }

let job_of_json j =
  {
    id = str_field "id" j;
    cells = cells_of_json j;
    domain = domain_of_json j;
    nn_splits = int_field ~default:0 "nn_splits" j;
    config = config_of_json j;
    use_memo = bool_field ~default:true "memo" j;
  }

let request_of_json j =
  try
    match J.member "t" j with
    | Some (J.Str "job") -> Ok (Job (job_of_json j))
    | Some (J.Str "lookup") ->
        Ok
          (Lookup
             {
               id = str_field "id" j;
               box = box_of_json (req_field "box" j);
               cmd = int_field ~default:0 "cmd" j;
             })
    | Some (J.Str "cancel") -> Ok (Cancel (str_field "id" j))
    | Some (J.Str "stats") -> Ok Stats
    | Some (J.Str "shutdown") -> Ok Shutdown
    | Some (J.Str other) -> Error (Printf.sprintf "unknown request type %S" other)
    | Some _ -> Error "field \"t\" must be a string"
    | None -> Error "missing request type field \"t\""
  with
  | J.Parse_error msg -> Error msg
  | Invalid_argument msg -> Error msg

let job_to_json (job : job) =
  let c = job.config in
  let r = c.Verify.reach in
  let cells_fields =
    match job.cells with
    | Explicit l -> [ ("cells", J.List (List.map symstate_to_json l)) ]
    | Partition { arcs; headings; arc_indices } ->
        [
          ( "partition",
            J.Obj
              [
                ("arcs", num_int arcs);
                ("headings", num_int headings);
                ("arc_indices", int_list_json arc_indices);
              ] );
        ]
  in
  let strategy_fields =
    match c.Verify.strategy with
    | Verify.All_dims dims -> [ ("split_dims", int_list_json dims) ]
    | Verify.Most_influential { candidates; take } ->
        [ ("split_dims", int_list_json candidates); ("split_take", num_int take) ]
  in
  let l = c.Verify.limits in
  let limit_fields =
    (match l.Budget.deadline_s with
    | Some d -> [ ("deadline_s", J.Num d) ]
    | None -> [])
    @ (match l.Budget.max_ode_steps with
      | Some n -> [ ("max_ode_steps", num_int n) ]
      | None -> [])
    @
    match l.Budget.max_symstates with
    | Some n -> [ ("max_symstates", num_int n) ]
    | None -> []
  in
  J.Obj
    ([ ("t", J.Str "job"); ("id", J.Str job.id) ]
    @ cells_fields
    @ [
        ("domain", J.Str (T.domain_to_string job.domain));
        ("nn_splits", num_int job.nn_splits);
        ("max_depth", num_int c.Verify.max_depth);
        ("m", num_int r.Reach.integration_steps);
        ("order", num_int r.Reach.taylor_order);
        ("gamma", num_int r.Reach.gamma);
        ( "scheme",
          J.Str
            (match r.Reach.scheme with
            | Nncs_ode.Simulate.Direct -> "direct"
            | Nncs_ode.Simulate.Lohner -> "lohner") );
        ("early_abort", J.Bool r.Reach.early_abort);
      ]
    @ strategy_fields
    @ [
        ("workers", num_int c.Verify.workers);
        ( "scheduler",
          J.Str
            (match c.Verify.scheduler with
            | Verify.Cells -> "cells"
            | Verify.Leaves -> "leaves") );
        ("batch_leaves", num_int c.Verify.batch_leaves);
        ("degrade", J.Bool c.Verify.degrade);
        ("memo", J.Bool job.use_memo);
      ]
    @ limit_fields)

let request_to_json = function
  | Job job -> job_to_json job
  | Lookup { id; box; cmd } ->
      J.Obj
        [
          ("t", J.Str "lookup");
          ("id", J.Str id);
          ("box", box_to_json box);
          ("cmd", num_int cmd);
        ]
  | Cancel id -> J.Obj [ ("t", J.Str "cancel"); ("id", J.Str id) ]
  | Stats -> J.Obj [ ("t", J.Str "stats") ]
  | Shutdown -> J.Obj [ ("t", J.Str "shutdown") ]

let event_to_json = function
  | Accepted { id; fingerprint } ->
      J.Obj
        [
          ("t", J.Str "accepted");
          ("id", J.Str id);
          ("fingerprint", J.Str fingerprint);
        ]
  | Progress { id; cells_done; total } ->
      J.Obj
        [
          ("t", J.Str "progress");
          ("id", J.Str id);
          ("done", num_int cells_done);
          ("total", num_int total);
        ]
  | Verdict
      {
        id;
        fingerprint;
        source;
        coverage;
        proved_cells;
        unknown_cells;
        total_cells;
        elapsed_s;
      } ->
      J.Obj
        [
          ("t", J.Str "verdict");
          ("id", J.Str id);
          ("fingerprint", J.Str fingerprint);
          ("source", J.Str (source_to_string source));
          ("coverage", J.Num coverage);
          ("proved_cells", num_int proved_cells);
          ("unknown_cells", num_int unknown_cells);
          ("total_cells", num_int total_cells);
          ("elapsed_s", J.Num elapsed_s);
        ]
  | Lookup_result { id; status } ->
      J.Obj
        ([
           ("t", J.Str "lookup_result");
           ("id", J.Str id);
           ("status", J.Str (lookup_status_to_string status));
         ]
        @ match status with Lookup_unsafe { k } -> [ ("k", num_int k) ] | _ -> [])
  | Cancelled { id; reason } ->
      J.Obj
        [ ("t", J.Str "cancelled"); ("id", J.Str id); ("reason", J.Str reason) ]
  | Job_error { id; reason } ->
      J.Obj [ ("t", J.Str "error"); ("id", J.Str id); ("reason", J.Str reason) ]
  | Stats_report payload ->
      J.Obj
        (("t", J.Str "stats")
        :: (match payload with J.Obj fields -> fields | p -> [ ("payload", p) ])
        )
  | Bye -> J.Obj [ ("t", J.Str "bye") ]

let event_of_json j =
  try
    match J.member "t" j with
    | Some (J.Str "accepted") ->
        Ok
          (Accepted
             { id = str_field "id" j; fingerprint = str_field "fingerprint" j })
    | Some (J.Str "progress") ->
        Ok
          (Progress
             {
               id = str_field "id" j;
               cells_done = J.to_int (req_field "done" j);
               total = J.to_int (req_field "total" j);
             })
    | Some (J.Str "verdict") ->
        Ok
          (Verdict
             {
               id = str_field "id" j;
               fingerprint = str_field "fingerprint" j;
               source =
                 (match str_field "source" j with
                 | "memo" -> Memo
                 | "run" -> Run
                 | "coalesced" -> Coalesced
                 | s -> fail "unknown verdict source %S" s);
               coverage = J.to_float (req_field "coverage" j);
               proved_cells = J.to_int (req_field "proved_cells" j);
               unknown_cells =
                 J.to_int (req_field "unknown_cells" j);
               total_cells = J.to_int (req_field "total_cells" j);
               elapsed_s = J.to_float (req_field "elapsed_s" j);
             })
    | Some (J.Str "lookup_result") ->
        Ok
          (Lookup_result
             {
               id = str_field "id" j;
               status =
                 (match str_field "status" j with
                 | "unsafe" ->
                     Lookup_unsafe { k = J.to_int (req_field "k" j) }
                 | "safe" -> Lookup_safe
                 | "out_of_domain" -> Lookup_out_of_domain
                 | "unavailable" -> Lookup_unavailable
                 | s -> fail "unknown lookup status %S" s);
             })
    | Some (J.Str "cancelled") ->
        Ok (Cancelled { id = str_field "id" j; reason = str_field "reason" j })
    | Some (J.Str "error") ->
        Ok (Job_error { id = str_field "id" j; reason = str_field "reason" j })
    | Some (J.Str "stats") ->
        Ok
          (Stats_report
             (match j with
             | J.Obj fields ->
                 J.Obj (List.filter (fun (k, _) -> k <> "t") fields)
             | p -> p))
    | Some (J.Str "bye") -> Ok Bye
    | Some (J.Str other) -> Error (Printf.sprintf "unknown event type %S" other)
    | Some _ -> Error "field \"t\" must be a string"
    | None -> Error "missing event type field \"t\""
  with
  | J.Parse_error msg -> Error msg
  | Invalid_argument msg -> Error msg
