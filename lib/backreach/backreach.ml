module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module Json = Nncs_obs.Json
module Journal = Nncs_resilience.Journal
module Firewall = Nncs_resilience.Firewall
module Command = Nncs.Command
module Symstate = Nncs.Symstate
module Spec = Nncs.Spec
module System = Nncs.System
module Controller = Nncs.Controller
module Reach = Nncs.Reach
module Verify = Nncs.Verify
module Partition = Nncs.Partition

type config = {
  domain : B.t;
  grid : int array;
  reach : Reach.config;
  workers : int;
  escape_unsafe : bool;
}

let default_config ~domain ~grid =
  {
    domain;
    grid;
    reach = Reach.default_config;
    workers = 1;
    escape_unsafe = false;
  }

(* Per-quantized-state transition record: exactly what the journal
   persists, and all the BFS needs.  A [failed] state was firewalled and
   conservatively seeded as a contact. *)
type sinfo = {
  si_contact : bool;
  si_terminal : bool;
  si_escapes : bool;
  si_failed : bool;
  si_succs : int array;
}

type t = {
  t_domain : B.t;
  t_grid : int array;
  t_edges : float array array;  (* t_edges.(d): grid.(d) + 1 boundaries *)
  t_ncmds : int;
  t_escape_unsafe : bool;
  t_fingerprint : string;
  t_unsafe : (int, int) Hashtbl.t;  (* state id -> min sweeps to contact *)
  t_nstates : int;
  t_sweeps : int;
  t_build_s : float;
  t_failed : int;
  t_escaped : int;
}

let num_states t = t.t_nstates
let num_unsafe t = Hashtbl.length t.t_unsafe
let sweeps t = t.t_sweeps
let build_seconds t = t.t_build_s
let failed_states t = t.t_failed
let escaped_states t = t.t_escaped
let table_fingerprint t = t.t_fingerprint

(* ----- grid geometry ----- *)

let validate_config config =
  let d = B.dim config.domain in
  if d = 0 then invalid_arg "Backreach: empty domain";
  if Array.length config.grid <> d then
    invalid_arg "Backreach: grid/domain dimension mismatch";
  Array.iteri
    (fun i n ->
      if n < 1 then
        invalid_arg (Printf.sprintf "Backreach: grid.(%d) < 1" i))
    config.grid;
  if config.workers < 1 then invalid_arg "Backreach: workers < 1"

(* Cell boundaries per dimension, derived by running [Partition.grid] on
   the 1-D sub-box: the floats are bit-identical to the boundaries of
   the full grid, so build-time cells and lookup-time covering tests can
   never disagree by a rounding ulp. *)
let edges_of ~domain ~grid =
  Array.init (B.dim domain) (fun d ->
      let n = grid.(d) in
      let cells1 =
        Partition.grid (B.of_intervals [| B.get domain d |]) ~cells:[| n |]
      in
      let e = Array.make (n + 1) 0.0 in
      List.iteri
        (fun k b ->
          e.(k) <- I.lo (B.get b 0);
          e.(k + 1) <- I.hi (B.get b 0))
        cells1;
      e)

(* [Partition.grid] enumerates row-major with dimension 0 slowest; the
   linear cell index follows the same order. *)
let cell_box edges grid c =
  let d = Array.length grid in
  let idx = Array.make d 0 in
  let rem = ref c in
  for i = d - 1 downto 0 do
    idx.(i) <- !rem mod grid.(i);
    rem := !rem / grid.(i)
  done;
  B.of_bounds
    (Array.init d (fun i -> (edges.(i).(idx.(i)), edges.(i).(idx.(i) + 1))))

(* Cells along one dimension whose interval overlaps [blo, bhi]: strict
   interior overlap, except that degenerate intervals (a point cell from
   a 1-cell degenerate dimension, or a point query) count by
   coincidence.  Sharing a face alone is not overlap — an endpoint
   enclosure ending exactly on a boundary covers one cell, not two. *)
let dim_overlap_ks edges n blo bhi =
  let ks = ref [] in
  for k = n - 1 downto 0 do
    let alo = edges.(k) and ahi = edges.(k + 1) in
    let lo = Float.max alo blo and hi = Float.min ahi bhi in
    if
      (lo < hi || (lo = hi && (alo = ahi || blo = bhi)))
      [@lint.fp_exact
        "degenerate-interval coincidence: point cells and point queries \
         overlap exactly when their edges are bit-identical"]
    then ks := k :: !ks
  done;
  !ks

(* Covering cells of [box] (linear indices), plus whether part of [box]
   lies outside the domain. *)
let covering_cells ~edges ~grid ~domain box =
  let d = Array.length grid in
  let escapes = ref false in
  let per_dim =
    Array.init d (fun i ->
        let iv = B.get box i and dv = B.get domain i in
        if I.lo iv < I.lo dv || I.hi iv > I.hi dv then escapes := true;
        dim_overlap_ks edges.(i) grid.(i) (I.lo iv) (I.hi iv))
  in
  let cells =
    if Array.exists (fun ks -> ks = []) per_dim then []
    else
      Array.to_seq per_dim
      |> Seq.fold_lefti
           (fun acc i ks ->
             List.concat_map
               (fun p -> List.map (fun k -> (p * grid.(i)) + k) ks)
               acc)
           [ 0 ]
  in
  (cells, !escapes)

(* ----- fingerprint ----- *)

(* FNV-1a 64 over a canonical rendering of everything the table depends
   on.  Deliberately mirrors [Verify.fingerprint]'s blind spot: network
   weights are NOT hashed, so a table only answers for the network set
   it was built with — the documented caveat of DESIGN.md §16. *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let fingerprint config sys =
  validate_config config;
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let addfl x = addf "%.17g;" x in
  addf "backreach:v1;";
  let d = B.dim config.domain in
  for i = 0 to d - 1 do
    addfl (I.lo (B.get config.domain i));
    addfl (I.hi (B.get config.domain i))
  done;
  Array.iter (addf "g%d;") config.grid;
  let cmds = sys.System.controller.Controller.commands in
  addf "commands:%d:%d;" (Command.size cmds) (Command.dim cmds);
  for i = 0 to Command.size cmds - 1 do
    Array.iter addfl (Command.value cmds i)
  done;
  addfl sys.System.controller.Controller.period;
  let r = config.reach in
  addf "flow:%d:%d:%s;" r.Reach.integration_steps r.Reach.taylor_order
    (match r.Reach.scheme with
    | Nncs_ode.Simulate.Direct -> "direct"
    | Nncs_ode.Simulate.Lohner -> "lohner");
  addf "nn:%s:%d;"
    (match sys.System.controller.Controller.domain with
    | Nncs_nnabs.Transformer.Interval -> "interval"
    | Nncs_nnabs.Transformer.Symbolic -> "symbolic"
    | Nncs_nnabs.Transformer.Affine -> "affine")
    sys.System.controller.Controller.nn_splits;
  addf "escape:%b;" config.escape_unsafe;
  addf "erroneous:%s;target:%s;" sys.System.erroneous.Spec.name
    sys.System.target.Spec.name;
  (* Spec names alone would collide across parameterizations (the bound
     is not in the name); probe each cell midpoint per command instead,
     like [Verify.fingerprint]'s per-cell probes. *)
  let edges = edges_of ~domain:config.domain ~grid:config.grid in
  let ncells = Array.fold_left ( * ) 1 config.grid in
  let mid (b : B.t) =
    Array.init (B.dim b) (fun i ->
        let iv = B.get b i in
        ((I.lo iv +. I.hi iv) /. 2.0)
        [@lint.fp_exact "fingerprint probe point: any in-cell point works"])
  in
  for c = 0 to ncells - 1 do
    let m = mid (cell_box edges config.grid c) in
    for u = 0 to Command.size cmds - 1 do
      addf "%b%b" (sys.System.erroneous.Spec.contains_point m u)
        (sys.System.target.Spec.contains_point m u)
    done
  done;
  fnv1a64 (Buffer.contents buf)

(* ----- journal records ----- *)

let num_int n = Json.Num (float_of_int n)

let box_bounds_json b =
  Json.List
    (List.init (B.dim b) (fun i ->
         let iv = B.get b i in
         Json.List [ Json.Num (I.lo iv); Json.Num (I.hi iv) ]))

let meta_json ~fingerprint ~grid ~domain ~ncmds ~escape_unsafe ~nstates =
  Json.Obj
    [
      ("t", Json.Str "backreach-meta");
      ("v", num_int 1);
      ("fingerprint", Json.Str fingerprint);
      ("grid", Json.List (Array.to_list (Array.map num_int grid)));
      ("domain", box_bounds_json domain);
      ("commands", num_int ncmds);
      ("escape_unsafe", Json.Bool escape_unsafe);
      ("states", num_int nstates);
    ]

let trans_json id (si : sinfo) =
  Json.Obj
    [
      ("t", Json.Str "trans");
      ("id", num_int id);
      ("contact", Json.Bool si.si_contact);
      ("terminal", Json.Bool si.si_terminal);
      ("escapes", Json.Bool si.si_escapes);
      ("failed", Json.Bool si.si_failed);
      ( "succs",
        Json.List (Array.to_list (Array.map num_int si.si_succs)) );
    ]

let trans_of_json j =
  let open Json in
  match (member "id" j, member "succs" j) with
  | Some id, Some (List succs) ->
      let b k = match member k j with Some (Bool v) -> v | _ -> false in
      Some
        ( to_int id,
          {
            si_contact = b "contact";
            si_terminal = b "terminal";
            si_escapes = b "escapes";
            si_failed = b "failed";
            si_succs = Array.of_list (List.map to_int succs);
          } )
  | _ -> None

(* ----- the one-period backward transition ----- *)

let compute_state ~config ~edges sys id =
  let cmds = sys.System.controller.Controller.commands in
  let ncmds = Command.size cmds in
  let cell = id / ncmds and cmd = id mod ncmds in
  let box = cell_box edges config.grid cell in
  let st = Symstate.make box cmd in
  let contact0 = sys.System.erroneous.Spec.intersects_box st in
  if sys.System.target.Spec.contains_box st then
    (* fully home: the forward analysis stops propagating such states,
       so backward they have no successors *)
    {
      si_contact = contact0;
      si_terminal = true;
      si_escapes = false;
      si_failed = false;
      si_succs = [||];
    }
  else
    let step () =
      let r = config.reach in
      let sim =
        Nncs_ode.Simulate.simulate ~scheme:r.Reach.scheme sys.System.plant
          ~t0:0.0
          ~period:sys.System.controller.Controller.period
          ~steps:r.Reach.integration_steps ~order:r.Reach.taylor_order
          ~state:box
          ~inputs:(Command.value_box cmds cmd)
      in
      let touches b =
        sys.System.erroneous.Spec.intersects_box (Symstate.make b cmd)
      in
      let flow_contact =
        Array.exists touches sim.Nncs_ode.Simulate.pieces
        || touches sim.Nncs_ode.Simulate.endpoint
      in
      let next_cmds =
        Controller.abstract_step sys.System.controller
          ~box:sim.Nncs_ode.Simulate.endpoint ~prev_cmd:cmd
      in
      let cells, escapes =
        covering_cells ~edges ~grid:config.grid ~domain:config.domain
          sim.Nncs_ode.Simulate.endpoint
      in
      let succs =
        List.concat_map
          (fun c -> List.map (fun u -> (c * ncmds) + u) next_cmds)
          cells
      in
      (flow_contact, escapes, Array.of_list succs)
    in
    match Firewall.protect ~classify:Reach.classify step with
    | Ok (flow_contact, escapes, succs) ->
        {
          si_contact =
            contact0 || flow_contact || (escapes && config.escape_unsafe);
          si_terminal = false;
          si_escapes = escapes;
          si_failed = false;
          si_succs = succs;
        }
    | Error _ ->
        (* cannot bound this state's successors: conservatively a
           contact, so anything that can reach it is flagged unsafe *)
        {
          si_contact = true;
          si_terminal = false;
          si_escapes = false;
          si_failed = true;
          si_succs = [||];
        }

(* ----- backward fixed point ----- *)

(* Level-synchronous BFS over the reversed successor relation: sweep k
   adds every state one more control period from contact.  Returns the
   table and the last non-empty sweep index. *)
let fixed_point ?writer infos =
  let n = Array.length infos in
  let preds = Array.make n [] in
  Array.iteri
    (fun i si -> Array.iter (fun s -> preds.(s) <- i :: preds.(s)) si.si_succs)
    infos;
  let k_of = Array.make n (-1) in
  let seed = ref [] in
  Array.iteri
    (fun i si ->
      if si.si_contact then begin
        k_of.(i) <- 0;
        seed := i :: !seed
      end)
    infos;
  let jwrite j = Option.iter (fun w -> Journal.write w j) writer in
  let rec go k frontier last =
    match frontier with
    | [] -> last
    | _ ->
        jwrite
          (Json.Obj
             [
               ("t", Json.Str "sweep");
               ("k", num_int k);
               ("added", num_int (List.length frontier));
             ]);
        let next =
          List.fold_left
            (fun acc s ->
              List.fold_left
                (fun acc p ->
                  if k_of.(p) < 0 then begin
                    k_of.(p) <- k + 1;
                    p :: acc
                  end
                  else acc)
                acc preds.(s))
            [] frontier
        in
        go (k + 1) next k
  in
  let last = go 0 !seed 0 in
  let unsafe = Hashtbl.create (max 16 (n / 4)) in
  Array.iteri (fun i k -> if k >= 0 then Hashtbl.add unsafe i k) k_of;
  (unsafe, last)

let table_of_infos ?writer ~config ~edges ~fp ~ncmds ~build_s infos =
  let unsafe, last_sweep = fixed_point ?writer infos in
  let count p = Array.fold_left (fun a si -> if p si then a + 1 else a) 0 infos in
  {
    t_domain = config.domain;
    t_grid = config.grid;
    t_edges = edges;
    t_ncmds = ncmds;
    t_escape_unsafe = config.escape_unsafe;
    t_fingerprint = fp;
    t_unsafe = unsafe;
    t_nstates = Array.length infos;
    t_sweeps = (if Hashtbl.length unsafe = 0 then 0 else last_sweep);
    t_build_s = build_s;
    t_failed = count (fun si -> si.si_failed);
    t_escaped = count (fun si -> si.si_escapes);
  }

let build ?journal ?(resume = false) ?progress config sys =
  validate_config config;
  if B.dim config.domain <> sys.System.plant.Nncs_ode.Ode.dim then
    invalid_arg "Backreach.build: domain/plant dimension mismatch";
  let started = Unix.gettimeofday () in
  let edges = edges_of ~domain:config.domain ~grid:config.grid in
  let ncells = Array.fold_left ( * ) 1 config.grid in
  let ncmds = Command.size sys.System.controller.Controller.commands in
  let nstates = ncells * ncmds in
  let fp = fingerprint config sys in
  let infos : sinfo option array = Array.make nstates None in
  (* resume: replay transition records from a matching journal so only
     the missing states are recomputed *)
  let appending =
    match journal with
    | Some path when resume && Sys.file_exists path ->
        let records = Journal.load path in
        let meta_fp =
          List.find_map
            (fun j ->
              match Json.member "t" j with
              | Some (Json.Str "backreach-meta") ->
                  Option.map Json.to_str (Json.member "fingerprint" j)
              | _ -> None)
            records
        in
        (match meta_fp with
        | Some f when f <> fp ->
            invalid_arg
              "Backreach.build: journal fingerprint mismatch (different \
               system or config); delete the journal or drop --resume"
        | Some _ ->
            List.iter
              (fun j ->
                match Json.member "t" j with
                | Some (Json.Str "trans") -> (
                    match trans_of_json j with
                    | Some (id, si) when id >= 0 && id < nstates ->
                        infos.(id) <- Some si
                    | _ -> ())
                | _ -> ())
              records
        | None -> ());
        meta_fp <> None
    | _ -> false
  in
  let writer = Option.map (fun p -> Journal.create ~append:appending p) journal in
  if not appending then
    Option.iter
      (fun w ->
        Journal.write w
          (meta_json ~fingerprint:fp ~grid:config.grid ~domain:config.domain
             ~ncmds ~escape_unsafe:config.escape_unsafe ~nstates))
      writer;
  Fun.protect
    ~finally:(fun () -> Option.iter Journal.close writer)
    (fun () ->
      (* one ticket per state id; every slot is written by exactly one
         worker, the join publishes them all to this domain *)
      let ticket = Atomic.make 0 in
      let done_count = Atomic.make 0 in
      let progress_mutex = Mutex.create () in
      let note_done () =
        let d = Atomic.fetch_and_add done_count 1 + 1 in
        Option.iter
          (fun f ->
            Mutex.lock progress_mutex;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock progress_mutex)
              (fun () -> f ~done_states:d ~total:nstates))
          progress
      in
      let worker () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add ticket 1 in
          if i >= nstates then continue := false
          else begin
            (match infos.(i) with
            | Some _ -> ()
            | None ->
                let si = compute_state ~config ~edges sys i in
                infos.(i) <- Some si;
                Option.iter (fun w -> Journal.write w (trans_json i si)) writer);
            note_done ()
          end
        done
      in
      let spawned =
        List.init (config.workers - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      List.iter Domain.join spawned;
      let infos =
        Array.map
          (function
            | Some si -> si
            | None -> assert false (* every ticket was drained *))
          infos
      in
      let build_s = Unix.gettimeofday () -. started in
      let t = table_of_infos ?writer ~config ~edges ~fp ~ncmds ~build_s infos in
      Option.iter
        (fun w ->
          Journal.write w
            (Json.Obj
               [
                 ("t", Json.Str "done");
                 ("unsafe", num_int (Hashtbl.length t.t_unsafe));
                 ("sweeps", num_int t.t_sweeps);
                 ("build_s", Json.Num build_s);
               ]))
        writer;
      t)

(* ----- queries ----- *)

type verdict = Unsafe of { k : int } | Safe | Out_of_domain

let state_k t cell cmd = Hashtbl.find_opt t.t_unsafe ((cell * t.t_ncmds) + cmd)

(* covering cells of a box fully inside the domain; None when the box
   leaves the domain or does not typecheck against it *)
let covering_in_domain t box cmd =
  if
    cmd < 0 || cmd >= t.t_ncmds
    || B.dim box <> B.dim t.t_domain
    || not (B.subset box t.t_domain)
  then None
  else
    let cells, _ =
      covering_cells ~edges:t.t_edges ~grid:t.t_grid ~domain:t.t_domain box
    in
    Some cells

let query t ~box ~cmd =
  match covering_in_domain t box cmd with
  | None -> Out_of_domain
  | Some cells ->
      let k =
        List.fold_left
          (fun acc c ->
            match (state_k t c cmd, acc) with
            | Some k, Some m -> Some (min k m)
            | Some k, None -> Some k
            | None, acc -> acc)
          None cells
      in
      (match k with Some k -> Unsafe { k } | None -> Safe)

(* ----- persistence ----- *)

let save_table t path =
  Journal.with_writer path (fun w ->
      Journal.write w
        (meta_json ~fingerprint:t.t_fingerprint ~grid:t.t_grid
           ~domain:t.t_domain ~ncmds:t.t_ncmds
           ~escape_unsafe:t.t_escape_unsafe ~nstates:t.t_nstates);
      let entries =
        Hashtbl.fold (fun id k acc -> (id, k) :: acc) t.t_unsafe []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      List.iter
        (fun (id, k) ->
          let cell = id / t.t_ncmds and cmd = id mod t.t_ncmds in
          Journal.write w
            (Json.Obj
               [
                 ("t", Json.Str "unsafe");
                 ("cell", num_int cell);
                 ("cmd", num_int cmd);
                 ("k", num_int k);
                 ("box", box_bounds_json (cell_box t.t_edges t.t_grid cell));
               ]))
        entries;
      Journal.write w
        (Json.Obj
           [
             ("t", Json.Str "table-end");
             ("unsafe", num_int (List.length entries));
           ]))

let load path =
  match Journal.load path with
  | exception Sys_error e -> Error e
  | records -> (
      let tag j =
        match Json.member "t" j with Some (Json.Str s) -> s | _ -> ""
      in
      match List.find_opt (fun j -> tag j = "backreach-meta") records with
      | None -> Error "no backreach-meta record (not a backreach artifact?)"
      | Some meta -> (
          try
            let ints k =
              match Json.member k meta with
              | Some (Json.List l) -> List.map Json.to_int l
              | _ -> failwith ("meta missing " ^ k)
            in
            let grid = Array.of_list (ints "grid") in
            let domain =
              match Json.member "domain" meta with
              | Some (Json.List dims) ->
                  B.of_bounds
                    (Array.of_list
                       (List.map
                          (function
                            | Json.List [ lo; hi ] ->
                                (Json.to_float lo, Json.to_float hi)
                            | _ -> failwith "meta: malformed domain")
                          dims))
              | _ -> failwith "meta missing domain"
            in
            let req k =
              match Json.member k meta with
              | Some v -> v
              | None -> failwith ("meta missing " ^ k)
            in
            let ncmds = Json.to_int (req "commands") in
            let nstates = Json.to_int (req "states") in
            let escape_unsafe =
              match req "escape_unsafe" with Json.Bool b -> b | _ -> false
            in
            let fp =
              match req "fingerprint" with
              | Json.Str s -> s
              | _ -> failwith "meta: malformed fingerprint"
            in
            let edges = edges_of ~domain ~grid in
            let trans = List.filter (fun j -> tag j = "trans") records in
            if trans <> [] then begin
              (* a build journal: re-derive the fixed point *)
              let infos = Array.make nstates None in
              List.iter
                (fun j ->
                  match trans_of_json j with
                  | Some (id, si) when id >= 0 && id < nstates ->
                      infos.(id) <- Some si
                  | _ -> ())
                trans;
              let missing =
                Array.fold_left
                  (fun a s -> if s = None then a + 1 else a)
                  0 infos
              in
              if missing > 0 then
                failwith
                  (Printf.sprintf
                     "incomplete build journal (%d/%d states missing): finish \
                      it with --resume"
                     missing nstates);
              let infos = Array.map Option.get infos in
              let build_s =
                List.fold_left
                  (fun acc j ->
                    if tag j = "done" then
                      match Json.member "build_s" j with
                      | Some v -> Json.to_float v
                      | None -> acc
                    else acc)
                  0.0 records
              in
              let config =
                { (default_config ~domain ~grid) with escape_unsafe }
              in
              Ok (table_of_infos ~config ~edges ~fp ~ncmds ~build_s infos)
            end
            else begin
              (* a compact table artifact: entries as-is, trailer checked *)
              let unsafe = Hashtbl.create 256 in
              let max_k = ref 0 in
              List.iter
                (fun j ->
                  if tag j = "unsafe" then begin
                    let cell = Json.to_int (Option.get (Json.member "cell" j)) in
                    let cmd = Json.to_int (Option.get (Json.member "cmd" j)) in
                    let k = Json.to_int (Option.get (Json.member "k" j)) in
                    if cell < 0 || cmd < 0 || cmd >= ncmds then
                      failwith "malformed unsafe entry";
                    Hashtbl.replace unsafe ((cell * ncmds) + cmd) k;
                    if k > !max_k then max_k := k
                  end)
                records;
              let trailer =
                List.fold_left
                  (fun acc j ->
                    if tag j = "table-end" then
                      Option.map Json.to_int (Json.member "unsafe" j)
                    else acc)
                  None records
              in
              (match trailer with
              | Some n when n = Hashtbl.length unsafe -> ()
              | Some n ->
                  failwith
                    (Printf.sprintf
                       "table-end count %d does not match %d entries \
                        (truncated table?)"
                       n (Hashtbl.length unsafe))
              | None ->
                  failwith "missing table-end trailer (truncated table?)");
              Ok
                {
                  t_domain = domain;
                  t_grid = grid;
                  t_edges = edges;
                  t_ncmds = ncmds;
                  t_escape_unsafe = escape_unsafe;
                  t_fingerprint = fp;
                  t_unsafe = unsafe;
                  t_nstates = nstates;
                  t_sweeps = !max_k;
                  t_build_s = 0.0;
                  t_failed = 0;
                  t_escaped = 0;
                }
            end
          with
          | Failure e -> Error e
          | Json.Parse_error e -> Error e
          | Invalid_argument e -> Error e))

(* ----- forward cross-check ----- *)

type finding_kind =
  | Safe_in_backreach of { k : int }
  | Unsafe_not_in_backreach of { step : int }

type finding = {
  f_cell : int;
  f_cmd : int;
  f_box : B.t;
  f_kind : finding_kind;
}

type cross_check = {
  findings : finding list;
  checked_safe : int;
  checked_unsafe : int;
  skipped : int;
}

let check_forward t (report : Verify.report) =
  let findings = ref [] in
  let checked_safe = ref 0 and checked_unsafe = ref 0 and skipped = ref 0 in
  List.iter
    (fun (cell : Verify.cell_report) ->
      match cell.Verify.leaves with
      | [] -> incr skipped
      | first :: _ as leaves -> (
          let cmd = first.Verify.state.Symstate.cmd in
          let box =
            List.fold_left
              (fun acc (l : Verify.leaf) -> B.hull acc l.Verify.state.Symstate.box)
              first.Verify.state.Symstate.box leaves
          in
          match covering_in_domain t box cmd with
          | None -> incr skipped
          | Some cells ->
              let ks = List.filter_map (fun c -> state_k t c cmd) cells in
              let all_proved =
                List.for_all (fun (l : Verify.leaf) -> l.Verify.proved) leaves
              in
              let min_error_step =
                List.fold_left
                  (fun acc (l : Verify.leaf) ->
                    match l.Verify.result with
                    | Verify.Completed (Reach.Reached_error { step }) -> (
                        match acc with
                        | Some s -> Some (min s step)
                        | None -> Some step)
                    | _ -> acc)
                  None leaves
              in
              if all_proved then begin
                incr checked_safe;
                (* forward: NO trajectory reaches E.  Flag only when the
                   table claims every covering quantized state may reach
                   E — a partial overlap is ordinary quantization slack. *)
                if List.length ks = List.length cells then
                  let k = List.fold_left min (List.hd ks) ks in
                  findings :=
                    {
                      f_cell = cell.Verify.index;
                      f_cmd = cmd;
                      f_box = box;
                      f_kind = Safe_in_backreach { k };
                    }
                    :: !findings
              end
              else
                match min_error_step with
                | Some step ->
                    incr checked_unsafe;
                    (* the table proves E unreachable from every covering
                       state, yet forward touched it: one of the two
                       analyses is wrong *)
                    if ks = [] then
                      findings :=
                        {
                          f_cell = cell.Verify.index;
                          f_cmd = cmd;
                          f_box = box;
                          f_kind = Unsafe_not_in_backreach { step };
                        }
                        :: !findings
                | None -> incr skipped))
    report.Verify.cells;
  {
    findings = List.rev !findings;
    checked_safe = !checked_safe;
    checked_unsafe = !checked_unsafe;
    skipped = !skipped;
  }

let finding_to_json f =
  let kind, extra =
    match f.f_kind with
    | Safe_in_backreach { k } -> ("safe_in_backreach", ("k", num_int k))
    | Unsafe_not_in_backreach { step } ->
        ("unsafe_not_in_backreach", ("step", num_int step))
  in
  Json.Obj
    [
      ("t", Json.Str "oracle_disagreement");
      ("cell", num_int f.f_cell);
      ("cmd", num_int f.f_cmd);
      ("kind", Json.Str kind);
      extra;
      ("box", box_bounds_json f.f_box);
    ]

let cross_check_to_json c =
  Json.Obj
    [
      ("t", Json.Str "cross-check");
      ("checked_safe", num_int c.checked_safe);
      ("checked_unsafe", num_int c.checked_unsafe);
      ("skipped", num_int c.skipped);
      ("disagreements", num_int (List.length c.findings));
      ("findings", Json.List (List.map finding_to_json c.findings));
    ]
