(** Quantized backward reachability (Bak & Tran, "Quantized State
    Backreachability"): an oracle independent of the forward analysis.

    The plant state space is quantized into a uniform grid (the same
    subdivision as {!Nncs.Partition.grid}); a {e quantized state} is one
    grid cell paired with one command index.  A quantized state makes
    {e contact} when its own box, or the validated flow over one
    controller period from it, can intersect the erroneous set [E]; its
    {e successors} are every (covering cell, next command) pair of the
    endpoint enclosure under [Controller.abstract_step].  Iterating the
    predecessor relation from the contact states to a fixed point yields
    the {e unsafe backreach table}: every quantized state from which the
    abstraction cannot rule out eventually touching [E], with the
    minimal number of sweeps (control periods) to contact.

    Because both the flow and the controller abstraction over-approximate,
    table membership over-approximates "some trajectory from this
    quantized state reaches E": a state {e not} in the table provably
    never reaches [E] (under the escape policy below).  Cross-checking a
    forward {!Nncs.Verify.report} against the table therefore turns any
    strong disagreement into evidence of a bug in one of the two
    analyses — see {!check_forward} and DESIGN.md §16 for exactly which
    direction is a theorem and which needs the quantization-exact test
    configurations.

    Soundness at the domain boundary: a successor enclosure leaving the
    quantized domain has no covering cells.  With [escape_unsafe =
    false] (default) the escaping portion is {e dropped}, which is sound
    only when every out-of-domain state is already in the target set [T]
    (true for the shipped ACAS Xu domain on x/y: beyond sensor range the
    intruder has left; {e not} true for an arbitrary domain — see
    DESIGN.md §16).  With [escape_unsafe = true] an escaping state is
    conservatively treated as a contact. *)

type config = {
  domain : Nncs_interval.Box.t;
      (** quantized region of the plant state space; dimensions with one
          grid cell may be degenerate (point intervals) *)
  grid : int array;  (** cells per dimension, same length as [domain] *)
  reach : Nncs.Reach.config;
      (** integration scheme/steps/order for the one-period flow (gamma
          and the forward-only fields are ignored) *)
  workers : int;  (** parallel domains for the transition sweep, >= 1 *)
  escape_unsafe : bool;  (** treat domain escape as contact (see above) *)
}

val default_config :
  domain:Nncs_interval.Box.t -> grid:int array -> config
(** Reach defaults, one worker, [escape_unsafe = false]. *)

type t
(** An unsafe backreach table: immutable after {!build}/{!load}, safe to
    share across domains. *)

val fingerprint : config -> Nncs.System.t -> string
(** Hash of everything the table depends on: domain, grid, command set,
    period, integration parameters, controller abstraction domain and
    splits, escape policy, and per-(cell midpoint, command) membership
    probes of [E] and [T].  Network {e weights} are not hashed — like
    the serve memo's fingerprint, a table is only valid for the network
    set it was built with (DESIGN.md §16). *)

val build :
  ?journal:string ->
  ?resume:bool ->
  ?progress:(done_states:int -> total:int -> unit) ->
  config ->
  Nncs.System.t ->
  t
(** Compute the table.  With [journal], every per-state transition
    record and every BFS sweep is appended to a JSONL journal (one
    [backreach-meta] line, then [trans]/[sweep]/[done] lines); with
    [resume] (and an existing journal whose fingerprint matches),
    already-journaled transition records are not recomputed — an
    interrupted build restarts mid-sweep.  Raises [Invalid_argument] on
    a malformed config or a resume-fingerprint mismatch.  Per-state
    analysis failures (enclosure divergence, numeric errors) never
    escape: the state is conservatively treated as a contact and counted
    in {!failed_states}.  [progress] may be called from worker
    domains (serialized). *)

type verdict =
  | Unsafe of { k : int }
      (** some covering quantized state can reach [E]; [k] is the
          minimal sweep count over the covering states *)
  | Safe  (** no covering quantized state is in the table *)
  | Out_of_domain  (** the queried box is not inside the table domain *)

val query : t -> box:Nncs_interval.Box.t -> cmd:int -> verdict
(** Verdict for an arbitrary box: covering cells are every grid cell
    whose interior overlaps the box (degenerate dimensions compare by
    coincidence).  Never raises; a dimension mismatch or an
    out-of-range command answers [Out_of_domain]. *)

val num_states : t -> int
val num_unsafe : t -> int
val sweeps : t -> int
(** Largest sweeps-to-contact over the table (0 when empty). *)

val build_seconds : t -> float
val failed_states : t -> int
(** States whose transition computation failed and were conservatively
    seeded as contacts. *)

val escaped_states : t -> int
val table_fingerprint : t -> string

(** {1 Persistence} *)

val save_table : t -> string -> unit
(** Compact JSONL artifact: the [backreach-meta] line, one [unsafe] line
    per table entry, and a [table-end] trailer with the entry count (the
    load-time torn-tail check — a truncated table would silently answer
    [Safe] for the lost entries). *)

val load : string -> (t, string) result
(** Load either format: a {!save_table} artifact (entries are taken
    as-is; a missing or mismatched [table-end] trailer is an error) or a
    {!build} journal (transition records must be complete; the fixed
    point is re-derived).  [Error] carries a human-readable reason. *)

(** {1 Forward cross-check} *)

type finding_kind =
  | Safe_in_backreach of { k : int }
      (** forward proved the cell safe, yet {e every} covering quantized
          state is in the unsafe table *)
  | Unsafe_not_in_backreach of { step : int }
      (** forward reached [E] at [step], yet {e no} covering quantized
          state is in the table — the table proves [E] unreachable, so
          the forward contact is spurious or one analysis is broken *)

type finding = {
  f_cell : int;  (** index of the cell in the forward partition *)
  f_cmd : int;
  f_box : Nncs_interval.Box.t;
  f_kind : finding_kind;
}

type cross_check = {
  findings : finding list;
  checked_safe : int;  (** fully-proved cells compared *)
  checked_unsafe : int;  (** error-reaching cells compared *)
  skipped : int;
      (** cells outside the table domain, with an unknown verdict, or
          with no leaves *)
}

val check_forward : t -> Nncs.Verify.report -> cross_check
(** Replay every forward verdict against the table.  A cell's box is the
    hull of its leaves; cells whose verdict is neither fully proved nor
    error-reaching (failures, horizon exhaustion, mixed refinements) are
    skipped — the oracle compares verdicts, it does not invent them. *)

val finding_to_json : finding -> Nncs_obs.Json.t
val cross_check_to_json : cross_check -> Nncs_obs.Json.t
