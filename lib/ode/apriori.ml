module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module R = Nncs_interval.Rounding

exception Enclosure_failure of string

let m_calls = Nncs_obs.Metrics.counter "ode.apriori_calls"

(* inflation rounds beyond the first Picard candidate — the "sub-step
   rejection" signal: a non-contracting candidate box had to be grown *)
let m_retries = Nncs_obs.Metrics.counter "ode.apriori_retries"

let max_tries = 30

let enclosure sys ~t1 ~h ~state ~inputs =
  if h <= 0.0 then invalid_arg "Apriori.enclosure: non-positive step";
  Nncs_resilience.Fault.trigger "ode.apriori";
  Nncs_obs.Metrics.incr m_calls;
  let tiv = I.make t1 (R.add_up t1 h) in
  let hiv = I.make 0.0 h in
  let picard b =
    let fb = Ode.eval_rhs_interval sys ~time:tiv ~state:b ~inputs in
    B.of_intervals
      (Array.init sys.Ode.dim (fun i ->
           I.add (B.get state i) (I.mul hiv (B.get fb i))))
  in
  (* Initial candidate: one Picard image of the initial box, inflated. *)
  let swell = 0.1 and abs_eps = ref 1e-9 in
  let rec iterate b tries =
    if tries > max_tries then
      raise
        (Enclosure_failure
           (Printf.sprintf
              "no contracting enclosure after %d Picard iterations (t1=%g h=%g)"
              max_tries t1 h))
    else
      let nb = picard b in
      if B.subset nb b then nb
      else begin
        Nncs_obs.Metrics.incr m_retries;
        (* grow: hull with the image, plus relative + absolute inflation *)
        let grown =
          B.mapi
            (fun _ iv ->
              let w = I.width iv in
              let eps =
                ((swell *. w) +. !abs_eps)
                [@lint.fp_exact
                  "inflation amount is a heuristic: any eps >= 0 is sound \
                   (I.inflate rounds outward)"]
              in
              (* an overflowing candidate widens to the whole line; the
                 Picard test then either accepts the (useless but sound)
                 unbounded enclosure or hits [max_tries] *)
              if Float.is_finite eps then I.inflate iv eps else I.entire)
            (B.hull b nb)
        in
        abs_eps :=
          (!abs_eps *. 2.0)
          [@lint.fp_exact "heuristic growth schedule, exactness irrelevant"];
        iterate grown (tries + 1)
      end
  in
  iterate (picard state) 0
