module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module R = Nncs_interval.Rounding

type result = { range : B.t; endpoint : B.t }

let step sys ~order ~t1 ~h ~state ~inputs =
  if order < 1 then invalid_arg "Onestep.step: order must be >= 1";
  let prior = Apriori.enclosure sys ~t1 ~h ~state ~inputs in
  (* Coefficients 0..K-1 from the initial box at t = t1; coefficient K
     (Lagrange remainder) from the a-priori box over the step. *)
  let zs =
    Series.solution_coeffs ~rhs:sys.Ode.rhs ~order ~time:(I.of_float t1)
      ~state ~inputs
  in
  let zr =
    Series.solution_coeffs ~rhs:sys.Ode.rhs ~order
      ~time:(I.make t1 (R.add_up t1 h))
      ~state:prior ~inputs
  in
  let expand d =
    B.of_intervals
      (Array.init sys.Ode.dim (fun i ->
           let coeffs =
             Array.init (order + 1) (fun k ->
                 if k < order then zs.(i).(k) else zr.(i).(k))
           in
           Series.horner coeffs d))
  in
  let endpoint = expand (I.of_float h) in
  let range_raw = expand (I.make 0.0 h) in
  (* The a-priori box is itself an enclosure over the step; meeting the
     two keeps whichever is tighter per dimension. *)
  let range =
    match B.meet range_raw prior with Some m -> m | None -> range_raw
  in
  { range; endpoint }
