module B = Nncs_interval.Box
module Span = Nncs_obs.Span
module Metrics = Nncs_obs.Metrics

let m_substeps = Metrics.counter "ode.substeps"

type scheme = Direct | Lohner

type result = { pieces : B.t array; range : B.t; endpoint : B.t }

let simulate_direct sys ~t0 ~period ~steps ~order ~state ~inputs =
  let h =
    (period /. float_of_int steps)
    [@lint.fp_exact
      "sub-step grid choice: each step is rigorously enclosed from its \
       exact float t1 and h, so grid rounding only relabels time"]
  in
  let pieces = Array.make steps state in
  let current = ref state in
  for i = 0 to steps - 1 do
    let t1 =
      (t0 +. (float_of_int i *. h))
      [@lint.fp_exact "grid time label; the step encloses from this exact float"]
    in
    let { Onestep.range; endpoint } =
      Onestep.step sys ~order ~t1 ~h ~state:!current ~inputs
    in
    pieces.(i) <- range;
    current := endpoint
  done;
  let range = Array.fold_left B.hull pieces.(0) pieces in
  { pieces; range; endpoint = !current }

let simulate_lohner sys ~t0 ~period ~steps ~order ~state ~inputs =
  let h =
    (period /. float_of_int steps)
    [@lint.fp_exact "sub-step grid choice, as in simulate_direct"]
  in
  let pieces = Array.make steps state in
  let current = ref (Lohner.init state) in
  for i = 0 to steps - 1 do
    let t1 =
      (t0 +. (float_of_int i *. h))
      [@lint.fp_exact "grid time label; the step encloses from this exact float"]
    in
    let { Lohner.next; range } =
      Lohner.step sys ~order ~t1 ~h ~inputs !current
    in
    pieces.(i) <- range;
    current := next
  done;
  let range = Array.fold_left B.hull pieces.(0) pieces in
  { pieces; range; endpoint = Lohner.hull !current }

let simulate ?(scheme = Direct) sys ~t0 ~period ~steps ~order ~state ~inputs =
  if steps <= 0 then invalid_arg "Simulate.simulate: steps must be positive";
  if period <= 0.0 then invalid_arg "Simulate.simulate: period must be positive";
  Nncs_resilience.Fault.trigger "ode.simulate";
  Metrics.add m_substeps steps;
  Span.with_ "ode.simulate"
    ~attrs:
      [
        ("steps", Nncs_obs.Trace.Int steps);
        ("scheme", Str (match scheme with Direct -> "direct" | Lohner -> "lohner"));
      ]
    (fun () ->
      match scheme with
      | Direct -> simulate_direct sys ~t0 ~period ~steps ~order ~state ~inputs
      | Lohner -> simulate_lohner sys ~t0 ~period ~steps ~order ~state ~inputs)
