module I = Nncs_interval.Interval
module B = Nncs_interval.Box

type t =
  | Const of float
  | Time
  | State of int
  | Input of int
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Sin of t
  | Cos of t
  | Exp of t
  | Sqrt of t
  | Sqr of t
  | Atan of t
  | Pow of t * int

let const c = Const c
let time = Time
let state i = State i
let input i = Input i
let neg = function Const c -> Const (-.c) | Neg e -> e | e -> Neg e

(* Constant folding must not perturb the dynamics: [diff] builds
   variational equations through these smart constructors, and a
   round-to-nearest fold would silently replace the true constant with a
   nearby one — an unsound model change, not a conservative one.  So a
   binary fold fires only when the float result is provably exact
   (error-free-transformation residual = 0); otherwise the node is kept
   and [eval_interval] encloses it rigorously.  Transcendental constants
   are never folded (libm is not correctly rounded). *)

let exact_add x y =
  let s = x +. y in
  let bb = s -. x in
  Float.is_finite s && (x -. (s -. bb)) +. (y -. bb) = 0.0
[@@lint.fp_exact "TwoSum residual: detects exact float addition"]

let exact_mul_result x y =
  let p = x *. y in
  if Float.is_finite p && Float.fma x y (-.p) = 0.0 then Some p else None
[@@lint.fp_exact "fma residual: detects exact float multiplication"]

let exact_div_result x y =
  let q = x /. y in
  if Float.is_finite q && Float.fma q y (-.x) = 0.0 then Some q else None
[@@lint.fp_exact "fma residual: detects exact float division"]

let ( + ) a b =
  match (a, b) with
  | Const 0.0, e | e, Const 0.0 -> e
  | Const x, Const y when exact_add x y -> Const (x +. y)
  | a, b -> Add (a, b)
[@@lint.fp_exact "fold guarded by exact_add"]

let ( - ) a b =
  match (a, b) with
  | e, Const 0.0 -> e
  | Const 0.0, e -> neg e
  | Const x, Const y when exact_add x (-.y) -> Const (x -. y)
  | a, b -> Sub (a, b)
[@@lint.fp_exact "fold guarded by exact_add on the negated operand"]

let ( * ) a b =
  match (a, b) with
  | Const 0.0, _ | _, Const 0.0 -> Const 0.0
  | Const 1.0, e | e, Const 1.0 -> e
  | Const x, Const y -> (
      match exact_mul_result x y with Some p -> Const p | None -> Mul (a, b))
  | a, b -> Mul (a, b)
[@@lint.fp_exact "fold guarded by exact_mul_result"]

let ( / ) a b =
  match (a, b) with
  | Const 0.0, _ -> Const 0.0
  | e, Const 1.0 -> e
  | Const x, Const y when y <> 0.0 -> (
      match exact_div_result x y with Some q -> Const q | None -> Div (a, b))
  | a, b -> Div (a, b)
[@@lint.fp_exact "fold guarded by exact_div_result"]

let sin = function e -> Sin e
let cos = function e -> Cos e
let exp = function e -> Exp e

let sqrt = function
  | Const c when c >= 0.0 && Float.fma (Float.sqrt c) (Float.sqrt c) (-.c) = 0.0
    ->
      Const (Float.sqrt c)
  | e -> Sqrt e
[@@lint.fp_exact "fold only exact square roots (fma residual guard)"]

let sqr = function
  | Const c -> (
      match exact_mul_result c c with Some p -> Const p | None -> Sqr (Const c))
  | e -> Sqr e

let atan = function e -> Atan e

let pow e n =
  if n < 0 then invalid_arg "Expr.pow: negative exponent"
  else if n = 0 then Const 1.0
  else if n = 1 then e
  else if n = 2 then sqr e
  else Pow (e, n)

let scale c e = Const c * e

let rec eval e ~time ~state ~inputs =
  match e with
  | Const c -> c
  | Time -> time
  | State i -> state.(i)
  | Input i -> inputs.(i)
  | Neg a -> -.eval a ~time ~state ~inputs
  | Add (a, b) -> eval a ~time ~state ~inputs +. eval b ~time ~state ~inputs
  | Sub (a, b) -> eval a ~time ~state ~inputs -. eval b ~time ~state ~inputs
  | Mul (a, b) -> eval a ~time ~state ~inputs *. eval b ~time ~state ~inputs
  | Div (a, b) -> eval a ~time ~state ~inputs /. eval b ~time ~state ~inputs
  | Sin a -> Float.sin (eval a ~time ~state ~inputs)
  | Cos a -> Float.cos (eval a ~time ~state ~inputs)
  | Exp a -> Float.exp (eval a ~time ~state ~inputs)
  | Sqrt a -> Float.sqrt (eval a ~time ~state ~inputs)
  | Sqr a ->
      let v = eval a ~time ~state ~inputs in
      v *. v
  | Atan a -> Float.atan (eval a ~time ~state ~inputs)
  | Pow (a, n) -> Float.pow (eval a ~time ~state ~inputs) (float_of_int n)
[@@lint.fp_exact
  "concrete point evaluator for simulation/falsification only; the \
   verified path goes through eval_interval"]

let rec eval_interval e ~time ~state ~inputs =
  match e with
  | Const c -> I.of_float c
  | Time -> time
  | State i -> B.get state i
  | Input i -> B.get inputs i
  | Neg a -> I.neg (eval_interval a ~time ~state ~inputs)
  | Add (a, b) ->
      I.add (eval_interval a ~time ~state ~inputs) (eval_interval b ~time ~state ~inputs)
  | Sub (a, b) ->
      I.sub (eval_interval a ~time ~state ~inputs) (eval_interval b ~time ~state ~inputs)
  | Mul (a, b) ->
      I.mul (eval_interval a ~time ~state ~inputs) (eval_interval b ~time ~state ~inputs)
  | Div (a, b) ->
      I.div (eval_interval a ~time ~state ~inputs) (eval_interval b ~time ~state ~inputs)
  | Sin a -> I.sin (eval_interval a ~time ~state ~inputs)
  | Cos a -> I.cos (eval_interval a ~time ~state ~inputs)
  | Exp a -> I.exp (eval_interval a ~time ~state ~inputs)
  | Sqrt a -> I.sqrt (eval_interval a ~time ~state ~inputs)
  | Sqr a -> I.sqr (eval_interval a ~time ~state ~inputs)
  | Atan a -> I.atan (eval_interval a ~time ~state ~inputs)
  | Pow (a, n) -> I.pow_int (eval_interval a ~time ~state ~inputs) n

let rec fold_indices f acc e =
  match e with
  | Const _ | Time -> acc
  | State _ | Input _ -> f acc e
  | Neg a | Sin a | Cos a | Exp a | Sqrt a | Sqr a | Atan a | Pow (a, _) ->
      fold_indices f acc a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      fold_indices f (fold_indices f acc a) b

let max_state_index e =
  fold_indices (fun acc n -> match n with State i -> max acc i | _ -> acc) (-1) e

let max_input_index e =
  fold_indices (fun acc n -> match n with Input i -> max acc i | _ -> acc) (-1) e

let rec pp fmt = function
  | Const c -> Format.fprintf fmt "%g" c
  | Time -> Format.fprintf fmt "t"
  | State i -> Format.fprintf fmt "s%d" i
  | Input i -> Format.fprintf fmt "u%d" i
  | Neg a -> Format.fprintf fmt "(- %a)" pp a
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf fmt "(%a / %a)" pp a pp b
  | Sin a -> Format.fprintf fmt "sin(%a)" pp a
  | Cos a -> Format.fprintf fmt "cos(%a)" pp a
  | Exp a -> Format.fprintf fmt "exp(%a)" pp a
  | Sqrt a -> Format.fprintf fmt "sqrt(%a)" pp a
  | Sqr a -> Format.fprintf fmt "sqr(%a)" pp a
  | Atan a -> Format.fprintf fmt "atan(%a)" pp a
  | Pow (a, n) -> Format.fprintf fmt "%a^%d" pp a n

let rec diff e i =
  match e with
  | Const _ | Time | Input _ -> Const 0.0
  | State j -> if j = i then Const 1.0 else Const 0.0
  | Neg a -> neg (diff a i)
  | Add (a, b) -> diff a i + diff b i
  | Sub (a, b) -> diff a i - diff b i
  | Mul (a, b) -> (diff a i * b) + (a * diff b i)
  | Div (a, b) -> ((diff a i * b) - (a * diff b i)) / sqr b
  | Sin a -> cos a * diff a i
  | Cos a -> neg (sin a) * diff a i
  | Exp a -> exp a * diff a i
  | Sqrt a -> diff a i / (Const 2.0 * sqrt a)
  | Sqr a -> Const 2.0 * a * diff a i
  | Atan a -> diff a i / (Const 1.0 + sqr a)
  | Pow (a, n) -> Const (float_of_int n) * pow a (Stdlib.( - ) n 1) * diff a i
