module B = Nncs_interval.Box

type system = { dim : int; input_dim : int; rhs : Expr.t array }

let make ~dim ~input_dim rhs =
  if Array.length rhs <> dim then
    invalid_arg "Ode.make: number of expressions must equal dim";
  Array.iter
    (fun e ->
      if Expr.max_state_index e >= dim then
        invalid_arg "Ode.make: state index out of range";
      if Expr.max_input_index e >= input_dim then
        invalid_arg "Ode.make: input index out of range")
    rhs;
  { dim; input_dim; rhs }

let eval_rhs sys ~time ~state ~inputs =
  Array.map (fun e -> Expr.eval e ~time ~state ~inputs) sys.rhs

let eval_rhs_interval sys ~time ~state ~inputs =
  B.of_intervals
    (Array.map (fun e -> Expr.eval_interval e ~time ~state ~inputs) sys.rhs)

let rk4_step sys ~time ~state ~inputs ~h =
  let n = sys.dim in
  let combine c k =
    Array.init n (fun i -> state.(i) +. (c *. k.(i)))
  in
  let k1 = eval_rhs sys ~time ~state ~inputs in
  let k2 =
    eval_rhs sys ~time:(time +. (0.5 *. h)) ~state:(combine (0.5 *. h) k1) ~inputs
  in
  let k3 =
    eval_rhs sys ~time:(time +. (0.5 *. h)) ~state:(combine (0.5 *. h) k2) ~inputs
  in
  let k4 = eval_rhs sys ~time:(time +. h) ~state:(combine h k3) ~inputs in
  Array.init n (fun i ->
      state.(i)
      +. (h /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i))))
[@@lint.fp_exact "non-rigorous RK4 reference integrator: simulation plots and falsification only, never part of a proof"]

let rk4_flow sys ~time ~state ~inputs ~duration ~steps =
  if steps <= 0 then invalid_arg "Ode.rk4_flow: steps must be positive";
  let h = duration /. float_of_int steps in
  let s = ref (Array.copy state) in
  for i = 0 to steps - 1 do
    s := rk4_step sys ~time:(time +. (float_of_int i *. h)) ~state:!s ~inputs ~h
  done;
  !s
[@@lint.fp_exact "non-rigorous RK4 reference integrator: simulation plots and falsification only, never part of a proof"]

let rk4_trajectory sys ~time ~state ~inputs ~duration ~steps =
  if steps <= 0 then invalid_arg "Ode.rk4_trajectory: steps must be positive";
  let h = duration /. float_of_int steps in
  let rec go i s acc =
    if i > steps then List.rev acc
    else
      let t = time +. (float_of_int i *. h) in
      if i = steps then List.rev ((t, s) :: acc)
      else
        let s' = rk4_step sys ~time:t ~state:s ~inputs ~h in
        go (i + 1) s' ((t, s) :: acc)
  in
  go 0 (Array.copy state) []
[@@lint.fp_exact "non-rigorous RK4 reference integrator: simulation plots and falsification only, never part of a proof"]
