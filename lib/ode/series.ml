module I = Nncs_interval.Interval
module B = Nncs_interval.Box

type t = I.t array

let order s = Array.length s - 1

let const k c =
  Array.init (k + 1) (fun i -> if i = 0 then c else I.zero)

let time_var k t0 =
  Array.init (k + 1) (fun i ->
      if i = 0 then t0 else if i = 1 then I.one else I.zero)

let check_same a b name =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Series.%s: order mismatch" name)

let add a b =
  check_same a b "add";
  Array.map2 I.add a b

let sub a b =
  check_same a b "sub";
  Array.map2 I.sub a b

let neg a = Array.map I.neg a
let scale c a = Array.map (I.mul_float c) a

let mul a b =
  check_same a b "mul";
  let k = order a in
  Array.init (k + 1) (fun n ->
      let acc = ref I.zero in
      for j = 0 to n do
        acc := I.add !acc (I.mul a.(j) b.(n - j))
      done;
      !acc)

let sqr a = mul a a

let div a b =
  check_same a b "div";
  let k = order a in
  let q = Array.make (k + 1) I.zero in
  for n = 0 to k do
    let acc = ref a.(n) in
    for j = 0 to n - 1 do
      acc := I.sub !acc (I.mul q.(j) b.(n - j))
    done;
    q.(n) <- I.div !acc b.(0)
  done;
  q

let sqrt a =
  let k = order a in
  let r = Array.make (k + 1) I.zero in
  r.(0) <- I.sqrt a.(0);
  let two_r0 = I.mul_float 2.0 r.(0) in
  for n = 1 to k do
    let acc = ref a.(n) in
    for j = 1 to n - 1 do
      acc := I.sub !acc (I.mul r.(j) r.(n - j))
    done;
    r.(n) <- I.div !acc two_r0
  done;
  r

let exp a =
  let k = order a in
  let e = Array.make (k + 1) I.zero in
  e.(0) <- I.exp a.(0);
  for n = 1 to k do
    let acc = ref I.zero in
    for j = 1 to n do
      acc := I.add !acc (I.mul (I.mul_float (float_of_int j) a.(j)) e.(n - j))
    done;
    (* divide by the exact integer, not by a nearest-rounded 1/n scalar *)
    e.(n) <- I.div !acc (I.of_float (float_of_int n))
  done;
  e

let sin_cos a =
  let k = order a in
  let s = Array.make (k + 1) I.zero and c = Array.make (k + 1) I.zero in
  s.(0) <- I.sin a.(0);
  c.(0) <- I.cos a.(0);
  for n = 1 to k do
    let sacc = ref I.zero and cacc = ref I.zero in
    for j = 1 to n do
      let ja = I.mul_float (float_of_int j) a.(j) in
      sacc := I.add !sacc (I.mul ja c.(n - j));
      cacc := I.add !cacc (I.mul ja s.(n - j))
    done;
    let n_iv = I.of_float (float_of_int n) in
    s.(n) <- I.div !sacc n_iv;
    c.(n) <- I.neg (I.div !cacc n_iv)
  done;
  (s, c)

let atan a =
  let k = order a in
  (* g = 1 + a^2 ; t' * g = a' *)
  let g = add (const k I.one) (sqr a) in
  let t = Array.make (k + 1) I.zero in
  t.(0) <- I.atan a.(0);
  for n = 1 to k do
    let acc = ref (I.mul_float (float_of_int n) a.(n)) in
    for j = 1 to n - 1 do
      acc := I.sub !acc (I.mul (I.mul_float (float_of_int j) t.(j)) g.(n - j))
    done;
    t.(n) <- I.div !acc (I.mul_float (float_of_int n) g.(0))
  done;
  t

let pow a n =
  if n < 0 then invalid_arg "Series.pow: negative exponent";
  let k = order a in
  let rec go acc base n =
    if n = 0 then acc
    else
      let acc = if n land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (n asr 1)
  in
  if n = 0 then const k I.one else go (const k I.one) a n

let rec eval_expr e ~time ~state ~inputs =
  let k = order time in
  match e with
  | Expr.Const c -> const k (I.of_float c)
  | Expr.Time -> time
  | Expr.State i -> state.(i)
  | Expr.Input i -> const k (B.get inputs i)
  | Expr.Neg a -> neg (eval_expr a ~time ~state ~inputs)
  | Expr.Add (a, b) ->
      add (eval_expr a ~time ~state ~inputs) (eval_expr b ~time ~state ~inputs)
  | Expr.Sub (a, b) ->
      sub (eval_expr a ~time ~state ~inputs) (eval_expr b ~time ~state ~inputs)
  | Expr.Mul (a, b) ->
      mul (eval_expr a ~time ~state ~inputs) (eval_expr b ~time ~state ~inputs)
  | Expr.Div (a, b) ->
      div (eval_expr a ~time ~state ~inputs) (eval_expr b ~time ~state ~inputs)
  | Expr.Sin a -> fst (sin_cos (eval_expr a ~time ~state ~inputs))
  | Expr.Cos a -> snd (sin_cos (eval_expr a ~time ~state ~inputs))
  | Expr.Exp a -> exp (eval_expr a ~time ~state ~inputs)
  | Expr.Sqrt a -> sqrt (eval_expr a ~time ~state ~inputs)
  | Expr.Sqr a -> sqr (eval_expr a ~time ~state ~inputs)
  | Expr.Atan a -> atan (eval_expr a ~time ~state ~inputs)
  | Expr.Pow (a, n) -> pow (eval_expr a ~time ~state ~inputs) n

let solution_coeffs ~rhs ~order:k ~time ~state ~inputs =
  let dim = Array.length rhs in
  if k < 1 then invalid_arg "Series.solution_coeffs: order must be >= 1";
  let z = Array.init dim (fun i -> const k (B.get state i)) in
  let tseries = time_var k time in
  (* z^(j+1) = f(z)^(j) / (j+1): the degree-j coefficient of f only
     depends on the coefficients 0..j of z, all valid at iteration j. *)
  for j = 0 to k - 1 do
    let fs = Array.map (fun e -> eval_expr e ~time:tseries ~state:z ~inputs) rhs in
    for i = 0 to dim - 1 do
      z.(i).(j + 1) <- I.div fs.(i).(j) (I.of_float (float_of_int (j + 1)))
    done
  done;
  z

let horner coeffs d =
  let n = Array.length coeffs in
  let acc = ref coeffs.(n - 1) in
  for i = n - 2 downto 0 do
    acc := I.add coeffs.(i) (I.mul d !acc)
  done;
  !acc
