module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module IM = Nncs_interval.Interval_matrix
module R = Nncs_interval.Rounding
module Mat = Nncs_linalg.Mat
module Qr = Nncs_linalg.Qr

type state = { center : float array; frame : Mat.t; errors : I.t array }

let init box =
  let c = B.center box in
  {
    center = c;
    frame = Mat.identity (B.dim box);
    errors =
      Array.mapi
        (fun i iv -> I.sub iv (I.of_float c.(i)))
        (B.to_array box);
  }

let interval_frame st = IM.of_floats (Array.init (Array.length st.center) (fun i -> Mat.row st.frame i))

let hull st =
  let spread = IM.mul_vec (interval_frame st) st.errors in
  B.of_intervals
    (Array.mapi (fun i e -> I.add (I.of_float st.center.(i)) e) spread)

(* ----- variational series: Taylor coefficients of J(t), J' = A(t) J ----- *)

(* series of the Jacobian entries A_ij(t) = (df_i/dz_j)(t, z(t), u) given
   the solution series [zser] *)
let jacobian_entry_series sys ~time ~zser ~inputs =
  let n = sys.Ode.dim in
  Array.init n (fun i ->
      Array.init n (fun j ->
          Series.eval_expr (Expr.diff sys.Ode.rhs.(i) j) ~time ~state:zser ~inputs))

(* coefficients J[0..k] of the matrix series from J[0] = j0 via
   J[k+1] = 1/(k+1) * sum_{m<=k} A[m] J[k-m] *)
let variational_coeffs ~order ~aser ~j0 =
  let n = IM.rows j0 in
  let a_coeff m = IM.init n n (fun i j -> aser.(i).(j).(m)) in
  let js = Array.make (order + 1) j0 in
  for k = 0 to order - 1 do
    let acc = ref (IM.create n n I.zero) in
    for m = 0 to k do
      acc := IM.add !acc (IM.mul (a_coeff m) js.(k - m))
    done;
    (* divide by the exact integer interval — a nearest-rounded 1/(k+1)
       scalar would not contain the true coefficient *)
    js.(k + 1) <- IM.scale (I.inv (I.of_float (float_of_int (k + 1)))) !acc
  done;
  js

(* a-priori enclosure of J over the step: matrix Picard iteration
   JB = I + [0,h] * A(prior) * JB *)
let jacobian_prior sys ~t1 ~h ~prior ~inputs =
  let n = sys.Ode.dim in
  let tiv = I.make t1 (R.add_up t1 h) in
  let hiv = I.make 0.0 h in
  let abox =
    IM.init n n (fun i j ->
        Expr.eval_interval (Expr.diff sys.Ode.rhs.(i) j) ~time:tiv ~state:prior
          ~inputs)
  in
  let picard jb = IM.add (IM.identity n) (IM.scale hiv (IM.mul abox jb)) in
  (* Gronwall bound in a scaled norm: with D = diag(d_i) the matrix
     Jt = D^-1 J D solves Jt' = (D^-1 A D) Jt, so
     ||Jt - I||_inf <= exp(||D^-1 A D||_inf h) - 1 =: r and hence
     |(J - I)_ij| <= r d_i / d_j — always valid, no contraction
     requirement.  Scaling by the state magnitudes keeps the norm small
     when coordinates live on very different scales (ft vs rad).  One
     Picard application then tightens. *)
  let d =
    Array.init n (fun i -> Float.max 1.0 (I.mag (Nncs_interval.Box.get prior i)))
  in
  (* norm and r must be UPPER bounds for the Gronwall argument, so the
     whole chain rounds up (and the final -1 rounds up too) *)
  let norm_a =
    let worst = ref 0.0 in
    for i = 0 to n - 1 do
      let row = ref 0.0 in
      for j = 0 to n - 1 do
        row :=
          R.add_up !row
            (R.div_up (R.mul_up (I.mag (IM.get abox i j)) d.(j)) d.(i))
      done;
      worst := Float.max !worst !row
    done;
    !worst
  in
  let r =
    R.sub_up
      ((R.lib_up (Float.exp (R.mul_up norm_a h)))
       [@lint.fp_exact "monotone libm call covered by the lib_up margin"])
      1.0
  in
  if not (Float.is_finite r) then
    raise
      (Apriori.Enclosure_failure
         (Printf.sprintf "Jacobian enclosure diverges (t1=%g h=%g)" t1 h));
  let gronwall =
    IM.init n n (fun i j ->
        let rij = R.div_up (R.mul_up r d.(i)) d.(j) in
        I.add (if i = j then I.one else I.zero) (I.make (-.rij) rij))
  in
  let tightened = picard gronwall in
  IM.init n n (fun i j ->
      match I.meet (IM.get gronwall i j) (IM.get tightened i j) with
      | Some m -> m
      | None -> IM.get gronwall i j)

(* horner evaluation of a matrix polynomial at a scalar interval *)
let matrix_horner coeffs d =
  let k = Array.length coeffs - 1 in
  let acc = ref coeffs.(k) in
  for i = k - 1 downto 0 do
    acc := IM.add coeffs.(i) (IM.init (IM.rows coeffs.(i)) (IM.cols coeffs.(i))
        (fun r c -> I.mul d (IM.get !acc r c)))
  done;
  !acc

let jacobian_enclosure sys ~order ~t1 ~h ~inputs box =
  let n = sys.Ode.dim in
  let prior = Apriori.enclosure sys ~t1 ~h ~state:box ~inputs in
  let tser = I.of_float t1 in
  (* orders < K over the initial box, order K over the prior *)
  let zser = Series.solution_coeffs ~rhs:sys.Ode.rhs ~order ~time:tser ~state:box ~inputs in
  let aser = jacobian_entry_series sys ~time:(Series.time_var order tser) ~zser ~inputs in
  let js = variational_coeffs ~order ~aser ~j0:(IM.identity n) in
  let jb = jacobian_prior sys ~t1 ~h ~prior ~inputs in
  let zpr =
    Series.solution_coeffs ~rhs:sys.Ode.rhs ~order
      ~time:(I.make t1 (R.add_up t1 h))
      ~state:prior ~inputs
  in
  let apr =
    jacobian_entry_series sys
      ~time:(Series.time_var order (I.make t1 (R.add_up t1 h)))
      ~zser:zpr ~inputs
  in
  let jpr = variational_coeffs ~order ~aser:apr ~j0:jb in
  let coeffs = Array.init (order + 1) (fun k -> if k < order then js.(k) else jpr.(k)) in
  matrix_horner coeffs (I.of_float h)

type step_result = { next : state; range : B.t }

let m_lohner_steps = Nncs_obs.Metrics.counter "ode.lohner_steps"

(* rigorous enclosure of the inverse of a nearly-orthogonal float matrix:
   Q^-1 = (Q^T Q)^-1 Q^T and ||(Q^T Q)^-1 - I||_inf <= eps/(1-eps) where
   eps = ||Q^T Q - I||_inf, evaluated in interval arithmetic *)
let inverse_orthogonal q =
  let n = Mat.rows q in
  let qi = IM.of_floats (Array.init n (fun i -> Mat.row q i)) in
  let qt = IM.transpose qi in
  let g = IM.mul qt qi in
  let eps = ref 0.0 in
  for i = 0 to n - 1 do
    let row = ref 0.0 in
    for j = 0 to n - 1 do
      let e = I.add_float (IM.get g i j) (if i = j then -1.0 else 0.0) in
      (* eps must over-estimate ||Q^T Q - I||, so accumulate upward *)
      row := R.add_up !row (I.mag e)
    done;
    eps := Float.max !eps !row
  done;
  if !eps >= 0.5 then
    raise (Apriori.Enclosure_failure "QR factor too far from orthogonal");
  (* round delta up: numerator up, denominator down *)
  let delta = R.div_up !eps (R.sub_down 1.0 !eps) in
  let fudge = IM.init n n (fun i j ->
      I.add (if i = j then I.one else I.zero) (I.make (-.delta) delta))
  in
  IM.mul fudge qt

let step sys ~order ~t1 ~h ~inputs st =
  Nncs_obs.Metrics.incr m_lohner_steps;
  let n = sys.Ode.dim in
  let zbox = hull st in
  let prior = Apriori.enclosure sys ~t1 ~h ~state:zbox ~inputs in
  (* 1. point Taylor step of the center, remainder over the prior *)
  let zc =
    Series.solution_coeffs ~rhs:sys.Ode.rhs ~order ~time:(I.of_float t1)
      ~state:(B.of_point st.center) ~inputs
  in
  let zpr =
    Series.solution_coeffs ~rhs:sys.Ode.rhs ~order
      ~time:(I.make t1 (R.add_up t1 h))
      ~state:prior ~inputs
  in
  let hd = I.of_float h in
  let point_flow =
    Array.init n (fun i ->
        let coeffs =
          Array.init (order + 1) (fun k -> if k < order then zc.(i).(k) else zpr.(i).(k))
        in
        Series.horner coeffs hd)
  in
  (* 2. Jacobian of the flow over the current hull *)
  let jfull = jacobian_enclosure sys ~order ~t1 ~h ~inputs zbox in
  (* 3. propagate the error set: M = J * frame, d = point defect *)
  let m = IM.mul jfull (interval_frame st) in
  let new_center = Array.map I.mid point_flow in
  let defect = Array.mapi (fun i v -> I.sub v (I.of_float new_center.(i))) point_flow in
  (* 4. new frame: pivoted QR of mid(M) with columns scaled by the error radii *)
  let mmid = IM.midpoint m in
  let scaled =
    (Mat.init n n (fun i j ->
         mmid.(i).(j) *. Float.max 1e-30 (I.rad st.errors.(j)))
    [@lint.fp_exact
      "frame choice is a heuristic: any float matrix is admissible, \
       soundness comes from the rigorous inverse_orthogonal"])
  in
  let q = Qr.orthonormalize scaled in
  let qinv = inverse_orthogonal q in
  (* errors' = (Q^-1 M) errors + Q^-1 defect *)
  let qm = IM.mul qinv m in
  let e1 = IM.mul_vec qm st.errors in
  let e2 = IM.mul_vec qinv defect in
  let errors = Array.map2 I.add e1 e2 in
  let next = { center = new_center; frame = q; errors } in
  (* 5. range over the step: the prior meets the direct Taylor range *)
  let direct_range =
    let d01 = I.make 0.0 h in
    let zbser =
      Series.solution_coeffs ~rhs:sys.Ode.rhs ~order ~time:(I.of_float t1)
        ~state:zbox ~inputs
    in
    B.of_intervals
      (Array.init n (fun i ->
           let coeffs =
             Array.init (order + 1) (fun k ->
                 if k < order then zbser.(i).(k) else zpr.(i).(k))
           in
           Series.horner coeffs d01))
  in
  let range =
    match B.meet direct_range prior with Some r -> r | None -> prior
  in
  { next; range }
