type t = { lo : float; hi : float }

exception Empty_meet
exception Division_by_zero_interval
exception Numeric_error of string

module R = Rounding

let numeric_error fmt = Printf.ksprintf (fun s -> raise (Numeric_error s)) fmt

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then
    numeric_error "Interval.make: NaN bound [%h, %h]" lo hi
  else if lo > hi then
    invalid_arg
      (Printf.sprintf "Interval.make: invalid bounds [%h, %h]" lo hi)
  else { lo; hi }

let of_float x =
  if Float.is_nan x then numeric_error "Interval.of_float: NaN"
  else { lo = x; hi = x }

let zero = { lo = 0.0; hi = 0.0 }
let one = { lo = 1.0; hi = 1.0 }

(* 3.14159265358979311599... < pi < 3.14159265358979356009... *)
let pi =
  let p = 4.0 *. Float.atan 1.0 in
  { lo = R.next_down p; hi = R.next_up p }
[@@lint.fp_exact "4*atan 1 nearest-rounded, then nudged one ulp each way; brackets checked against the expansion above"]

let two_pi = { lo = R.next_down (2.0 *. pi.lo); hi = R.next_up (2.0 *. pi.hi) }
[@@lint.fp_exact "products with exact 2.0 nudged outward"]
let half_pi = { lo = R.next_down (0.5 *. pi.lo); hi = R.next_up (0.5 *. pi.hi) }
[@@lint.fp_exact "products with exact 0.5 nudged outward"]
let entire = { lo = Float.neg_infinity; hi = Float.infinity }
let lo x = x.lo
let hi x = x.hi
let mid x =
  if x.lo = Float.neg_infinity && x.hi = Float.infinity then 0.0
  else if x.lo = Float.neg_infinity then x.hi
  else if x.hi = Float.infinity then x.lo
  else
    let m = 0.5 *. (x.lo +. x.hi) in
    if m < x.lo then x.lo else if m > x.hi then x.hi else m
[@@lint.fp_exact "any point of the interval is an admissible midpoint; the clamp keeps it inside"]

let width x = R.sub_up x.hi x.lo
let rad x = 0.5 *. width x
[@@lint.fp_exact "heuristic size measure; enclosure logic reads lo/hi directly"]
let mag x = Float.max (Float.abs x.lo) (Float.abs x.hi)

let mig x =
  if x.lo <= 0.0 && x.hi >= 0.0 then 0.0
  else Float.min (Float.abs x.lo) (Float.abs x.hi)

let contains x v = x.lo <= v && v <= x.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi
let intersects a b = a.lo <= b.hi && b.lo <= a.hi
let equal a b = Float.equal a.lo b.lo && Float.equal a.hi b.hi
let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let meet a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if Float.is_nan lo || Float.is_nan hi then
    numeric_error "Interval.meet: NaN bound (operands [%h,%h] [%h,%h])" a.lo
      a.hi b.lo b.hi
  else if lo > hi then None
  else Some { lo; hi }

let meet_exn a b = match meet a b with Some m -> m | None -> raise Empty_meet

let bisect x =
  let m = mid x in
  ({ lo = x.lo; hi = m }, { lo = m; hi = x.hi })

let inflate x eps =
  if not (Float.is_finite eps) then
    numeric_error "Interval.inflate: non-finite epsilon %h" eps;
  if eps < 0.0 then invalid_arg "Interval.inflate: negative epsilon";
  { lo = R.sub_down x.lo eps; hi = R.add_up x.hi eps }

let is_degenerate x = Float.equal x.lo x.hi
let is_bounded x = Float.is_finite x.lo && Float.is_finite x.hi
let neg x = { lo = -.x.hi; hi = -.x.lo }
let add a b = { lo = R.add_down a.lo b.lo; hi = R.add_up a.hi b.hi }
let sub a b = { lo = R.sub_down a.lo b.hi; hi = R.sub_up a.hi b.lo }

(* Products of endpoint pairs; 0 * inf is treated as 0 since an infinite
   endpoint only arises from unbounded intervals where the other factor
   bound still applies. *)
let ( *.. ) a b =
  let p = a *. b in
  if Float.is_nan p then 0.0 else p
[@@lint.fp_exact "raw endpoint products; mul nudges the min/max outward afterwards"]

let mul a b =
  let p1 = a.lo *.. b.lo and p2 = a.lo *.. b.hi in
  let p3 = a.hi *.. b.lo and p4 = a.hi *.. b.hi in
  let lo = Float.min (Float.min p1 p2) (Float.min p3 p4) in
  let hi = Float.max (Float.max p1 p2) (Float.max p3 p4) in
  { lo = R.next_down lo; hi = R.next_up hi }

let inv x =
  if contains x 0.0 then raise Division_by_zero_interval;
  { lo = R.div_down 1.0 x.hi; hi = R.div_up 1.0 x.lo }

let div a b =
  if contains b 0.0 then raise Division_by_zero_interval;
  mul a (inv b)

let add_float x c = { lo = R.add_down x.lo c; hi = R.add_up x.hi c }

let mul_float c x =
  if c >= 0.0 then { lo = R.mul_down c x.lo; hi = R.mul_up c x.hi }
  else { lo = R.mul_down c x.hi; hi = R.mul_up c x.lo }

let sqr x =
  let m = mig x and g = mag x in
  { lo = R.mul_down m m; hi = R.mul_up g g }

let sqrt x =
  if x.hi < 0.0 then invalid_arg "Interval.sqrt: negative interval";
  let lo = if x.lo <= 0.0 then 0.0 else R.sqrt_down x.lo in
  { lo; hi = R.sqrt_up x.hi }

let pow_int x n =
  if n < 0 then invalid_arg "Interval.pow_int: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else
      let acc = if n land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (n asr 1)
  in
  if n = 0 then one
  else if n land 1 = 0 then
    (* even power: reduce to |x|^n so the result stays nonnegative tight *)
    let m = mig x and g = mag x in
    go one { lo = m; hi = g } n
  else go one x n

let abs x = { lo = mig x; hi = mag x }
let min_ a b = { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }
let max_ a b = { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }
let exp x = { lo = Float.max 0.0 (R.lib_down (Float.exp x.lo)); hi = R.lib_up (Float.exp x.hi) }
[@@lint.fp_exact "libm calls bracketed by the lib_down/lib_up margin"]

let log x =
  if x.hi <= 0.0 then invalid_arg "Interval.log: non-positive interval";
  let lo =
    if x.lo <= 0.0 then Float.neg_infinity else R.lib_down (Float.log x.lo)
  in
  { lo; hi = R.lib_up (Float.log x.hi) }
[@@lint.fp_exact "libm calls bracketed by the lib_down/lib_up margin"]

let atan x = { lo = R.lib_down (Float.atan x.lo); hi = R.lib_up (Float.atan x.hi) }
[@@lint.fp_exact "libm calls bracketed by the lib_down/lib_up margin"]

(* Does [a, b] possibly contain a point k * p (k integer)?  The quotients
   are computed in round-to-nearest and the test is padded with an
   absolute slack, so it can only err towards "yes" for the magnitudes
   (|a|, |b| < 1e6) used here, which merely widens enclosures. *)
let maybe_contains_multiple p a b =
  let slack = 1e-9 in
  let q1 = Float.ceil ((a /. p) -. slack) and q2 = Float.floor ((b /. p) +. slack) in
  q2 >= q1
[@@lint.fp_exact "padded quotient test can only err towards wider enclosures (see comment)"]

let clamp_unit x = { lo = Float.max (-1.0) x.lo; hi = Float.min 1.0 x.hi }

let cos x =
  if not (is_bounded x) || width x >= two_pi.lo then { lo = -1.0; hi = 1.0 }
  else
    let ca = Float.cos x.lo and cb = Float.cos x.hi in
    let lo = R.lib_down (Float.min ca cb) and hi = R.lib_up (Float.max ca cb) in
    (* max 1 reached at even multiples of pi, min -1 at odd multiples *)
    let hi = if maybe_contains_multiple two_pi.lo x.lo x.hi then 1.0 else hi in
    let lo =
      if maybe_contains_multiple two_pi.lo (x.lo -. pi.lo) (x.hi -. pi.lo) then -1.0 else lo
    in
    clamp_unit { lo; hi }
[@@lint.fp_exact "libm cosines bracketed by lib margins; extrema handled via maybe_contains_multiple"]

let sin x = cos (sub x half_pi)

let atan2 y x =
  let meets_origin = contains x 0.0 && contains y 0.0 in
  let meets_cut = x.lo < 0.0 && contains y 0.0 in
  if (not (is_bounded x)) || (not (is_bounded y)) || meets_origin || meets_cut then
    { lo = -.pi.hi; hi = pi.hi }
  else
    (* Away from the origin and the branch cut the extremal angles over a
       box are attained at its corners (the supporting rays through the
       origin touch the convex box at vertices). *)
    let c1 = Float.atan2 y.lo x.lo and c2 = Float.atan2 y.lo x.hi in
    let c3 = Float.atan2 y.hi x.lo and c4 = Float.atan2 y.hi x.hi in
    let lo = Float.min (Float.min c1 c2) (Float.min c3 c4) in
    let hi = Float.max (Float.max c1 c2) (Float.max c3 c4) in
    {
      lo = Float.max (-.pi.hi) (R.lib_down lo);
      hi = Float.min pi.hi (R.lib_up hi);
    }
[@@lint.fp_exact
  "corner atan2 values bracketed by lib margins and clamped to the \
   rigorous pi enclosure"]

let pp fmt x = Format.fprintf fmt "[%.17g, %.17g]" x.lo x.hi
let to_string x = Format.asprintf "%a" pp x
