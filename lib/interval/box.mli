(** Axis-aligned boxes: cartesian products of intervals. *)

type t
(** Immutable n-dimensional box, n >= 1. *)

val of_intervals : Interval.t array -> t
(** The array is copied. Raises [Invalid_argument] on an empty array. *)

val of_point : float array -> t
(** Degenerate box.  Raises [Interval.Numeric_error] on NaN
    coordinates. *)

val of_bounds : (float * float) array -> t
(** Raises [Interval.Numeric_error] on NaN bounds (numeric garbage from
    upstream computations surfaces here instead of propagating). *)

val dim : t -> int
val get : t -> int -> Interval.t
val to_array : t -> Interval.t array
(** Fresh copy. *)

val lo : t -> float array
val hi : t -> float array
val center : t -> float array
val corners : t -> float array list
(** The 2^n corner points (n <= 20 enforced). *)

val map : (Interval.t -> Interval.t) -> t -> t
val mapi : (int -> Interval.t -> Interval.t) -> t -> t
val replace : t -> int -> Interval.t -> t
(** Functional update of one coordinate. *)

val contains : t -> float array -> bool
val subset : t -> t -> bool
val intersects : t -> t -> bool
val equal : t -> t -> bool
val hull : t -> t -> t
val meet : t -> t -> t option
val inflate : t -> float -> t
(** Widen every coordinate; raises [Interval.Numeric_error] on a NaN or
    infinite radius. *)

val max_width : t -> float
(** Width of the widest coordinate. *)

val widest_dim : t -> int
val widths : t -> float array
val volume : t -> float
(** Upper bound on the volume (product of widths); 0 for degenerate. *)

val bisect : t -> int -> t * t
(** Split along the given dimension at its midpoint. *)

val bisect_widest : t -> t * t

val split_dims : t -> int list -> t list
(** Bisect along each of the listed dimensions (cartesian product of the
    halves): [split_dims b [i; j]] yields 4 sub-boxes. *)

val distance_centers : t -> t -> float
(** Squared euclidean distance between centers (Definition 9). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
