(** Sound one-dimensional interval arithmetic.

    An interval is a non-empty set [{x | lo <= x <= hi}] of reals with
    floating-point endpoints.  All operations return enclosures of the
    exact set image (outward rounding, see {!Rounding}). *)

type t = private { lo : float; hi : float }

exception Empty_meet
(** Raised by {!meet_exn} when the intersection is empty. *)

exception Division_by_zero_interval
(** Raised by {!div} when the divisor contains zero. *)

exception Numeric_error of string
(** Numeric garbage surfaced at a guard: a NaN bound reaching {!make},
    {!of_float} or {!meet}, or a non-finite inflation radius.  Distinct
    from [Invalid_argument] (a caller bug) so the verification driver
    can classify it as a [Numeric] failure and degrade the offending
    cell to [Unknown] instead of dying. *)

(** {1 Construction} *)

val make : float -> float -> t
(** [make lo hi] requires [lo <= hi] and both finite or infinite, not
    NaN.  Raises {!Numeric_error} on NaN bounds, [Invalid_argument] on
    [lo > hi]. *)

val of_float : float -> t
(** Degenerate interval [x, x]. *)

val zero : t
val one : t

val pi : t
(** Tight enclosure of pi. *)

val two_pi : t
val half_pi : t

val entire : t
(** The whole real line. *)

(** {1 Accessors} *)

val lo : t -> float
val hi : t -> float
val mid : t -> float
(** Midpoint, rounded to nearest (a member of the interval). *)

val rad : t -> float
(** Upper bound on half the width. *)

val width : t -> float
(** Upper bound on [hi - lo]. *)

val mag : t -> float
(** [max |x|] over the interval. *)

val mig : t -> float
(** [min |x|] over the interval. *)

(** {1 Set predicates and operations} *)

val contains : t -> float -> bool
val subset : t -> t -> bool
(** [subset a b] is true iff [a] is included in [b]. *)

val intersects : t -> t -> bool
val equal : t -> t -> bool
val hull : t -> t -> t
val meet : t -> t -> t option
val meet_exn : t -> t -> t
val bisect : t -> t * t
(** Split at the midpoint. *)

val inflate : t -> float -> t
(** [inflate x eps] widens both ends by [eps >= 0] absolutely.  Raises
    {!Numeric_error} on a NaN or infinite [eps] (an infinite radius
    would silently turn the interval into the whole line). *)

val is_degenerate : t -> bool
val is_bounded : t -> bool

(** {1 Arithmetic} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Raises {!Division_by_zero_interval} when the divisor contains 0. *)

val inv : t -> t
val add_float : t -> float -> t
val mul_float : float -> t -> t
val sqr : t -> t
val sqrt : t -> t
(** Requires [hi >= 0]; the negative part, if any, is clipped (the
    enclosure of sqrt over the nonnegative part). *)

val pow_int : t -> int -> t
(** Integer power, [n >= 0]. *)

val abs : t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

(** {1 Transcendentals} *)

val exp : t -> t
val log : t -> t
(** Requires [hi > 0]; positive-part enclosure. *)

val sin : t -> t
val cos : t -> t
val atan : t -> t
val atan2 : t -> t -> t
(** [atan2 y x]: enclosure of the angle of points (x, y) in the box.
    Falls back to [[-pi, pi]] when the box meets the branch cut or the
    origin. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
