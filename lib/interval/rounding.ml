(* Directed rounding emulated with ulp nudges on top of round-to-nearest.

   The bit-level successor of a finite IEEE-754 double is obtained by
   incrementing its payload when positive and decrementing it when
   negative (symmetrically for the predecessor).  Zero is handled apart
   because +0.0 and -0.0 share the payload 0. *)

[@@@lint.fp_exact
  "this module IS the directed-rounding implementation: every \
   nearest-rounded op below is deliberately followed by a ulp nudge \
   (or 4-ulp libm margin) in the safe direction"]

let next_up x =
  if Float.is_nan x then x
  else if x = Float.infinity then x
  else if x = 0.0 then Int64.float_of_bits 1L
  else
    let bits = Int64.bits_of_float x in
    if x > 0.0 then Int64.float_of_bits (Int64.add bits 1L)
    else Int64.float_of_bits (Int64.sub bits 1L)

let next_down x =
  if Float.is_nan x then x
  else if x = Float.neg_infinity then x
  else if x = 0.0 then Int64.float_of_bits (Int64.add Int64.min_int 1L)
  else
    let bits = Int64.bits_of_float x in
    if x > 0.0 then Int64.float_of_bits (Int64.sub bits 1L)
    else Int64.float_of_bits (Int64.add bits 1L)

let rec steps_up n x = if n <= 0 then x else steps_up (n - 1) (next_up x)
let rec steps_down n x = if n <= 0 then x else steps_down (n - 1) (next_down x)

(* +/-/*/÷ and sqrt are correctly rounded by IEEE-754, so the true result
   lies within one ulp of the computed one: a single nudge suffices.  The
   nudge is skipped when the operation is exact would be ideal, but
   detecting exactness costs more than the width it saves. *)

let add_down a b = next_down (a +. b)
let add_up a b = next_up (a +. b)
let sub_down a b = next_down (a -. b)
let sub_up a b = next_up (a -. b)
let mul_down a b = next_down (a *. b)
let mul_up a b = next_up (a *. b)
let div_down a b = next_down (a /. b)
let div_up a b = next_up (a /. b)
let sqrt_down a = next_down (sqrt a)
let sqrt_up a = next_up (sqrt a)

(* libm transcendentals are typically faithful to < 2 ulps; 4 ulps of
   slack is a comfortable, cheap margin. *)

let lib_down x = steps_down 4 x
let lib_up x = steps_up 4 x
