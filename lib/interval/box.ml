type t = Interval.t array
(* Invariant: never mutated after construction, length >= 1. *)

let of_intervals a =
  if Array.length a = 0 then invalid_arg "Box.of_intervals: empty";
  Array.copy a

let of_point p = of_intervals (Array.map Interval.of_float p)

let of_bounds b =
  of_intervals (Array.map (fun (lo, hi) -> Interval.make lo hi) b)

let dim b = Array.length b
let get b i = b.(i)
let to_array b = Array.copy b
let lo b = Array.map Interval.lo b
let hi b = Array.map Interval.hi b
let center b = Array.map Interval.mid b

let corners b =
  let n = dim b in
  if n > 20 then invalid_arg "Box.corners: dimension too large";
  let rec go i acc =
    if i = n then acc
    else
      let lo = Interval.lo b.(i) and hi = Interval.hi b.(i) in
      let vals = if Float.equal lo hi then [ lo ] else [ lo; hi ] in
      let acc =
        List.concat_map (fun c -> List.map (fun v -> v :: c) vals) acc
      in
      go (i + 1) acc
  in
  List.map (fun c -> Array.of_list (List.rev c)) (go 0 [ [] ])

let map f b = Array.map f b
let mapi f b = Array.mapi f b

let replace b i x =
  let c = Array.copy b in
  c.(i) <- x;
  c

let contains b p =
  dim b = Array.length p
  && Array.for_all2 (fun iv v -> Interval.contains iv v) b p

let subset a b = Array.for_all2 Interval.subset a b
let intersects a b = Array.for_all2 Interval.intersects a b
let equal a b = dim a = dim b && Array.for_all2 Interval.equal a b
let hull a b = Array.map2 Interval.hull a b

let meet a b =
  let exception Empty in
  try
    Some
      (Array.map2
         (fun x y ->
           match Interval.meet x y with Some m -> m | None -> raise Empty)
         a b)
  with Empty -> None

let inflate b eps = Array.map (fun iv -> Interval.inflate iv eps) b
let widths b = Array.map Interval.width b
let max_width b = Array.fold_left (fun m iv -> Float.max m (Interval.width iv)) 0.0 b

let widest_dim b =
  let best = ref 0 and best_w = ref (Interval.width b.(0)) in
  for i = 1 to dim b - 1 do
    let w = Interval.width b.(i) in
    if w > !best_w then begin
      best := i;
      best_w := w
    end
  done;
  !best

let volume b = Array.fold_left (fun v iv -> v *. Interval.width iv) 1.0 b
[@@lint.fp_exact "size heuristic for splitting/reporting"]

let bisect b i =
  let l, r = Interval.bisect b.(i) in
  (replace b i l, replace b i r)

let bisect_widest b = bisect b (widest_dim b)

let split_dims b dims =
  let split_one boxes i =
    List.concat_map
      (fun bx ->
        let l, r = bisect bx i in
        [ l; r ])
      boxes
  in
  List.fold_left split_one [ b ] dims

let distance_centers a b =
  let ca = center a and cb = center b in
  let acc = ref 0.0 in
  Array.iteri (fun i x -> let d = x -. cb.(i) in acc := !acc +. (d *. d)) ca;
  !acc
[@@lint.fp_exact "distance heuristic for join selection"]

let pp fmt b =
  Format.fprintf fmt "@[<hov 1>(%a)@]"
    (Format.pp_print_array
       ~pp_sep:(fun f () -> Format.fprintf f "@ x@ ")
       Interval.pp)
    b

let to_string b = Format.asprintf "%a" pp b
